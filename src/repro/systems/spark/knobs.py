"""Spark knob catalog.

~26 parameters modeled on ``spark.*`` settings (dots → underscores).
Tiers mirror the tutorial's observation that of Spark's 200+ parameters
"about 30 can have a significant impact": executor sizing, parallelism,
memory fractions, serialization, and shuffle behaviour dominate, while a
long tail of knobs is inert.
"""

from __future__ import annotations

from typing import Dict

from repro.core.parameters import (
    BooleanParameter,
    CategoricalParameter,
    ConfigurationSpace,
    NumericParameter,
    make_constraint,
)

__all__ = [
    "build_spark_space",
    "build_spark_space_extended",
    "GROUND_TRUTH_IMPACT",
    "SPARK_TUNING_KNOBS",
]

GROUND_TRUTH_IMPACT: Dict[str, int] = {
    "executor_memory_mb": 2,
    "executor_cores": 2,
    "num_executors": 2,
    "shuffle_partitions": 2,
    "memory_fraction": 2,
    "serializer": 2,
    "broadcast_threshold_mb": 2,
    "storage_fraction": 1,
    "shuffle_compress": 1,
    "io_compression_codec": 1,
    "locality_wait_s": 1,
    "speculation": 1,
    "rdd_compress": 1,
    "reducer_max_inflight_mb": 1,
    "shuffle_file_buffer_kb": 1,
    "kryo_buffer_mb": 0,
    "network_timeout_s": 0,
    "scheduler_mode": 0,
    "eventlog_enabled": 0,
    "ui_retained_stages": 0,
    "heartbeat_interval_s": 0,
    "max_result_size_mb": 0,
    "rpc_io_threads": 0,
    "cleaner_period_s": 0,
    "port_max_retries": 0,
    "dynamic_allocation": 1,
}

SPARK_TUNING_KNOBS = [k for k, v in GROUND_TRUTH_IMPACT.items() if v >= 1]


def build_spark_space(node_memory_mb: int = 16384) -> ConfigurationSpace:
    """Spark configuration space for nodes with ``node_memory_mb`` RAM."""
    max_exec_mem = max(1024, int(node_memory_mb * 0.9))
    space = ConfigurationSpace(name="spark")
    space.add(NumericParameter(
        "executor_memory_mb", default=1024, low=512, high=max_exec_mem,
        integer=True, log_scale=True, unit="MiB",
        description="Heap size of each executor.",
    ))
    space.add(NumericParameter(
        "executor_cores", default=1, low=1, high=8, integer=True,
        description="Concurrent tasks per executor.",
    ))
    space.add(NumericParameter(
        "num_executors", default=2, low=1, high=64, integer=True, log_scale=True,
        description="Executors requested for the application.",
    ))
    space.add(NumericParameter(
        "memory_fraction", default=0.6, low=0.3, high=0.9,
        description="Heap fraction for execution+storage (unified).",
    ))
    space.add(NumericParameter(
        "storage_fraction", default=0.5, low=0.1, high=0.9,
        description="Unified-memory share protected for cached data.",
    ))
    space.add(NumericParameter(
        "shuffle_partitions", default=200, low=8, high=2000, integer=True,
        log_scale=True, description="Partitions for shuffled stages.",
    ))
    space.add(CategoricalParameter(
        "serializer", default="java", choices=["java", "kryo"],
        description="Object serialization library.",
    ))
    space.add(BooleanParameter(
        "rdd_compress", default=False, description="Compress cached RDD blocks.",
    ))
    space.add(BooleanParameter(
        "shuffle_compress", default=True, description="Compress shuffle output.",
    ))
    space.add(CategoricalParameter(
        "io_compression_codec", default="lz4", choices=["lz4", "snappy", "zstd"],
        description="Codec for shuffle/RDD compression.",
    ))
    space.add(NumericParameter(
        "broadcast_threshold_mb", default=10, low=1, high=512, integer=True,
        log_scale=True, unit="MiB",
        description="Max table size for broadcast joins.",
    ))
    space.add(NumericParameter(
        "locality_wait_s", default=3.0, low=0.0, high=10.0, unit="s",
        description="Wait for data-local scheduling before downgrading.",
    ))
    space.add(BooleanParameter(
        "speculation", default=False, description="Re-launch slow tasks.",
    ))
    space.add(NumericParameter(
        "reducer_max_inflight_mb", default=48, low=8, high=512, integer=True,
        log_scale=True, unit="MiB",
        description="Shuffle fetch data in flight per reducer.",
    ))
    space.add(NumericParameter(
        "shuffle_file_buffer_kb", default=32, low=8, high=1024, integer=True,
        log_scale=True, unit="KiB", description="Shuffle write buffer.",
    ))
    space.add(BooleanParameter(
        "dynamic_allocation", default=False,
        description="Scale executor count with the stage's task backlog.",
    ))
    # ---- inert catalog noise ---------------------------------------------
    space.add(NumericParameter(
        "kryo_buffer_mb", default=64, low=8, high=512, integer=True,
        unit="MiB", description="Kryo serialization buffer cap.",
    ))
    space.add(NumericParameter(
        "network_timeout_s", default=120, low=30, high=600, integer=True,
        unit="s", description="Default network timeout.",
    ))
    space.add(CategoricalParameter(
        "scheduler_mode", default="FIFO", choices=["FIFO", "FAIR"],
        description="Intra-application scheduling policy.",
    ))
    space.add(BooleanParameter(
        "eventlog_enabled", default=False, description="Write event logs.",
    ))
    space.add(NumericParameter(
        "ui_retained_stages", default=1000, low=100, high=10000, integer=True,
        description="Stage history kept for the UI.",
    ))
    space.add(NumericParameter(
        "heartbeat_interval_s", default=10, low=1, high=60, integer=True,
        unit="s", description="Executor heartbeat period.",
    ))
    space.add(NumericParameter(
        "max_result_size_mb", default=1024, low=128, high=8192, integer=True,
        unit="MiB", description="Max serialized result size at the driver.",
    ))
    space.add(NumericParameter(
        "rpc_io_threads", default=8, low=1, high=64, integer=True,
        description="Netty RPC threads.",
    ))
    space.add(NumericParameter(
        "cleaner_period_s", default=1800, low=60, high=7200, integer=True,
        unit="s", description="Context-cleaner interval.",
    ))
    space.add(NumericParameter(
        "port_max_retries", default=16, low=1, high=100, integer=True,
        description="Port binding retries.",
    ))

    space.add_constraint(make_constraint(
        "executor_fits_node",
        touches=("executor_memory_mb",),
        predicate=lambda v: v["executor_memory_mb"] <= node_memory_mb * 0.95,
        description="One executor must fit on a node.",
    ))
    return space


# ---------------------------------------------------------------------------
# Extended catalog: the full 200+ knob surface the paper cites
# ---------------------------------------------------------------------------

#: Component/name fragments used to generate the documented-but-inert
#: tail of the catalog (real Spark ships hundreds of such settings).
_INERT_COMPONENTS = [
    "akka", "broadcast_factory", "buffer_pool", "closure", "codegen",
    "deploy", "driver_supervise", "executor_logs", "external_catalog",
    "files", "history", "io_encryption", "jars", "kubernetes", "launcher",
    "listener_bus", "locality_fallback", "log_rotation", "mesos", "metrics",
    "python_worker", "r_backend", "repl", "rest_server", "security",
    "shuffle_registration", "speculation_quantile_log", "stage_attempts",
    "standalone", "streaming_backpressure_log", "task_reaper", "ui_proxy",
    "yarn", "zookeeper",
]
_INERT_SUFFIXES = [
    ("timeout_s", 10, 600, 60),
    ("retries", 1, 20, 3),
    ("buffer_kb", 8, 4096, 32),
    ("interval_s", 1, 300, 10),
    ("max_entries", 100, 100000, 1000),
]


def build_spark_space_extended(node_memory_mb: int = 16384) -> ConfigurationSpace:
    """The tuning catalog plus a generated inert tail, ~200 knobs total.

    Real Spark exposes 200+ settings of which the vast majority cannot
    affect job latency (logging, UI, deployment, security).  This
    builder reproduces that surface so catalog-scale experiments (E5)
    measure the paper's "about 30 of 200" fraction rather than a
    pre-pruned space.  The generated knobs are genuinely inert: the
    simulator never reads them.
    """
    space = build_spark_space(node_memory_mb)
    target_total = 200
    generated = 0
    for component in _INERT_COMPONENTS:
        for suffix, low, high, default in _INERT_SUFFIXES:
            if len(space) >= target_total:
                return space
            space.add(NumericParameter(
                f"{component}_{suffix}",
                default=default,
                low=low,
                high=high,
                integer=True,
                log_scale=high / low >= 64,
                description=f"Inert {component.replace('_', ' ')} setting.",
            ))
            generated += 1
    return space
