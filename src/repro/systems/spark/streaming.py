"""Micro-batch streaming on the Spark simulator (§2.5 challenge 3).

Real-time analytics changes the tuning objective: a streaming job is
*stable* only if each micro-batch is processed faster than batches
arrive; otherwise the backlog — and therefore end-to-end latency —
grows without bound.  Tuning for latency under a stability constraint
is qualitatively different from tuning batch runtime, which is why the
tutorial lists it as an open challenge.

:class:`StreamingApp` describes an ingest rate and a per-batch DAG;
:func:`analyze_streaming` runs one batch under a configuration and
derives the steady-state verdict:

* ``stable``: processing time < batch interval;
* ``latency_s``: steady-state end-to-end latency (batching delay +
  processing) when stable, else infinity;
* ``utilization``: processing time / interval — the headroom metric
  backpressure controllers watch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import Configuration
from repro.systems.spark.dag import SparkJob, SparkStage, SparkWorkload
from repro.systems.spark.engine import SparkSimulator

__all__ = ["StreamingApp", "StreamingVerdict", "analyze_streaming", "make_streaming_app"]


@dataclass(frozen=True)
class StreamingApp:
    """A micro-batch streaming application.

    Attributes:
        name: identifier.
        arrival_mb_s: ingest rate the source produces.
        batch_interval_s: micro-batch trigger interval (an application
            setting, exposed here because tuning it against the arrival
            rate IS the streaming-tuning problem).
        cpu_ms_per_mb: per-MB processing density of the batch DAG.
        agg_ratio: output/input ratio of the windowed aggregation.
    """

    name: str
    arrival_mb_s: float
    batch_interval_s: float
    cpu_ms_per_mb: float = 8.0
    agg_ratio: float = 0.05

    def __post_init__(self) -> None:
        if self.arrival_mb_s <= 0 or self.batch_interval_s <= 0:
            raise ValueError("arrival rate and batch interval must be positive")

    @property
    def batch_mb(self) -> float:
        return self.arrival_mb_s * self.batch_interval_s

    def one_batch_workload(self) -> SparkWorkload:
        """The per-batch job as a regular Spark workload."""
        job = SparkJob(f"{self.name}-batch", [
            SparkStage("ingest", source_mb=max(self.batch_mb, 1.0),
                       output_ratio=0.9, cpu_ms_per_mb=self.cpu_ms_per_mb,
                       skew=0.2),
            SparkStage("window-agg", parents=("ingest",), shuffled=True,
                       output_ratio=self.agg_ratio, cpu_ms_per_mb=4.0,
                       skew=0.3),
        ])
        return SparkWorkload(f"{self.name}@{self.arrival_mb_s:g}mbps", [job])


@dataclass(frozen=True)
class StreamingVerdict:
    """Steady-state analysis of one (app, configuration) pair."""

    stable: bool
    batch_processing_s: float
    utilization: float
    latency_s: float

    @property
    def headroom(self) -> float:
        return max(0.0, 1.0 - self.utilization)


def analyze_streaming(
    simulator: SparkSimulator,
    app: StreamingApp,
    config: Configuration,
) -> StreamingVerdict:
    """Run one micro-batch and derive the steady-state verdict.

    The per-batch measurement excludes application startup (paid once,
    not per batch).
    """
    workload = app.one_batch_workload()
    measurement = simulator.run(workload, config)
    if not measurement.ok:
        return StreamingVerdict(
            stable=False,
            batch_processing_s=math.inf,
            utilization=math.inf,
            latency_s=math.inf,
        )
    # Remove the one-time application startup charged by the simulator.
    processing = max(measurement.runtime_s - 4.0, 1e-3)
    utilization = processing / app.batch_interval_s
    stable = utilization < 1.0
    if stable:
        # Steady state: a record waits up to one interval to enter a
        # batch (expected half), then the batch is processed; queueing
        # inflation grows as utilization approaches 1 (M/D/1-flavored).
        latency = (
            0.5 * app.batch_interval_s
            + processing * (1.0 + utilization / (2.0 * (1.0 - utilization)))
        )
    else:
        latency = math.inf
    return StreamingVerdict(
        stable=stable,
        batch_processing_s=processing,
        utilization=utilization,
        latency_s=latency,
    )


def make_streaming_app(
    arrival_mb_s: float,
    batch_interval_s: float = 5.0,
    name: str = "clickstream",
) -> StreamingApp:
    """A click-stream-like windowed aggregation app."""
    return StreamingApp(
        name=name,
        arrival_mb_s=arrival_mb_s,
        batch_interval_s=batch_interval_s,
    )
