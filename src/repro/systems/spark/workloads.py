"""Canonical Spark workloads.

The applications the Spark-tuning literature motivates: batch ETL
(wordcount/sort), SQL joins with broadcast decisions, and iterative
analytics (PageRank, k-means) whose performance hinges on caching.
"""

from __future__ import annotations

import numpy as np

from repro.systems.spark.dag import SparkJob, SparkStage, SparkWorkload

__all__ = [
    "spark_wordcount",
    "spark_sort",
    "spark_sql_join",
    "spark_pagerank",
    "spark_kmeans",
    "spark_streaming_batches",
    "adhoc_app",
    "make_workload_suite",
]


def spark_wordcount(input_gb: float = 10.0) -> SparkWorkload:
    mb = input_gb * 1024
    job = SparkJob("wordcount", [
        SparkStage("read-map", source_mb=mb, output_ratio=0.4,
                   cpu_ms_per_mb=12.0, shuffled=False, skew=0.3),
        SparkStage("reduce", parents=("read-map",), shuffled=True,
                   output_ratio=0.1, cpu_ms_per_mb=4.0, skew=0.4),
    ])
    return SparkWorkload(f"spark-wordcount-{input_gb:g}g", [job])


def spark_sort(input_gb: float = 10.0) -> SparkWorkload:
    mb = input_gb * 1024
    job = SparkJob("sort", [
        SparkStage("read", source_mb=mb, output_ratio=1.0,
                   cpu_ms_per_mb=2.0, skew=0.05),
        SparkStage("sort", parents=("read",), shuffled=True,
                   output_ratio=1.0, cpu_ms_per_mb=5.0, skew=0.05),
    ])
    return SparkWorkload(f"spark-sort-{input_gb:g}g", [job])


def spark_sql_join(fact_gb: float = 8.0, dim_mb: float = 64.0) -> SparkWorkload:
    """Star join: the dim table is broadcast-eligible if the threshold
    allows — the classic Spark SQL tuning cliff."""
    mb = fact_gb * 1024
    job = SparkJob("sql-join", [
        SparkStage("scan-fact", source_mb=mb, output_ratio=0.7,
                   cpu_ms_per_mb=3.0, skew=0.3),
        SparkStage("join", parents=("scan-fact",), shuffled=True,
                   output_ratio=0.5, cpu_ms_per_mb=6.0,
                   join_small_mb=dim_mb, skew=0.5),
        SparkStage("aggregate", parents=("join",), shuffled=True,
                   output_ratio=0.01, cpu_ms_per_mb=4.0, skew=0.2),
    ])
    return SparkWorkload(f"spark-sql-join-{fact_gb:g}g", [job])


def spark_pagerank(input_gb: float = 4.0, iterations: int = 8) -> SparkWorkload:
    mb = input_gb * 1024
    job = SparkJob("pagerank", [
        SparkStage("load-edges", source_mb=mb, output_ratio=1.2,
                   cpu_ms_per_mb=4.0, cached=True, skew=0.6),
        SparkStage("contribs", parents=("load-edges",), shuffled=True,
                   output_ratio=0.8, cpu_ms_per_mb=5.0,
                   iterative=True, skew=0.6),
        SparkStage("ranks", parents=("contribs",), shuffled=True,
                   output_ratio=0.05, cpu_ms_per_mb=3.0,
                   iterative=True, skew=0.3),
    ], iterations=iterations)
    return SparkWorkload(f"spark-pagerank-{input_gb:g}g-x{iterations}", [job])


def spark_kmeans(input_gb: float = 6.0, iterations: int = 10) -> SparkWorkload:
    """CPU-dense iterative ML over a cached training set."""
    mb = input_gb * 1024
    job = SparkJob("kmeans", [
        SparkStage("load-points", source_mb=mb, output_ratio=1.0,
                   cpu_ms_per_mb=3.0, cached=True, skew=0.05),
        SparkStage("assign", parents=("load-points",), shuffled=False,
                   output_ratio=0.02, cpu_ms_per_mb=25.0,
                   iterative=True, skew=0.1),
        SparkStage("update-centers", parents=("assign",), shuffled=True,
                   output_ratio=1.0, cpu_ms_per_mb=2.0,
                   iterative=True, skew=0.05),
    ], iterations=iterations)
    return SparkWorkload(f"spark-kmeans-{input_gb:g}g-x{iterations}", [job])


def spark_streaming_batches(batch_mb: float = 256.0, n_batches: int = 30) -> SparkWorkload:
    """Micro-batch stream processing: many small jobs, overhead-bound."""
    jobs = [
        SparkJob(f"batch-{i}", [
            SparkStage("ingest", source_mb=batch_mb, output_ratio=0.8,
                       cpu_ms_per_mb=6.0, skew=0.2),
            SparkStage("window-agg", parents=("ingest",), shuffled=True,
                       output_ratio=0.05, cpu_ms_per_mb=4.0, skew=0.3),
        ])
        for i in range(n_batches)
    ]
    return SparkWorkload(f"spark-streaming-{n_batches}x{batch_mb:g}mb", jobs)


def adhoc_app(seed: int, input_gb: float = 8.0) -> SparkWorkload:
    """A random, never-profiled Spark application."""
    rng = np.random.default_rng(seed)
    mb = input_gb * 1024 * float(rng.uniform(0.3, 2.0))
    n_extra = int(rng.integers(1, 4))
    stages = [SparkStage(
        "s0", source_mb=mb,
        output_ratio=float(np.clip(rng.lognormal(-0.2, 0.6), 0.01, 3.0)),
        cpu_ms_per_mb=float(rng.uniform(2.0, 30.0)),
        cached=bool(rng.random() < 0.3),
        skew=float(rng.uniform(0.0, 0.8)),
    )]
    for i in range(1, n_extra + 1):
        stages.append(SparkStage(
            f"s{i}", parents=(f"s{i-1}",), shuffled=bool(rng.random() < 0.7),
            output_ratio=float(np.clip(rng.lognormal(-0.5, 0.6), 0.01, 2.0)),
            cpu_ms_per_mb=float(rng.uniform(2.0, 20.0)),
            join_small_mb=float(rng.choice([0.0, 0.0, rng.uniform(4.0, 256.0)])),
            skew=float(rng.uniform(0.0, 0.8)),
        ))
    iters = int(rng.choice([1, 1, 1, rng.integers(2, 10)]))
    return SparkWorkload(
        f"spark-adhoc-{seed}", [SparkJob(f"adhoc-{seed}", stages, iterations=iters)]
    )


def make_workload_suite(input_gb: float = 8.0):
    """Standard Spark evaluation suite for the benchmark harness."""
    return [spark_sort(input_gb), spark_sql_join(input_gb), spark_pagerank(input_gb / 2)]
