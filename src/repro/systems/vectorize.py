"""Exact-parity helpers for the simulators' vectorized batch kernels.

The vectorized fast paths (``run_batch_vectorized`` on the DBMS, Spark,
and Hadoop simulators) promise *bit-for-bit* agreement with the scalar
``run()`` loop.  Elementwise float64 arithmetic (``+ - * /``),
``np.sqrt``, ``np.minimum``/``np.maximum``, ``np.floor``/``np.ceil``,
and ``np.where`` reproduce IEEE-754 scalar results exactly, so kernels
use numpy freely for those.  numpy's SIMD transcendentals do **not**:
``np.log``/``np.log2``/``np.exp`` and array ``**`` may differ from
CPython's ``math.*``/``float.__pow__`` (which call libm per element) in
the last ulp.  Every config-dependent transcendental therefore goes
through :func:`emap`/:func:`emap_where`, which apply the scalar
function per element — slower than a SIMD call but still one Python
loop per *call site* instead of one per configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.measurement import Measurement
from repro.core.parameters import Configuration

__all__ = [
    "emap",
    "emap_where",
    "knob_floats",
    "knob_bools",
    "knob_values",
    "knob_table",
    "metric_columns",
    "metrics_row",
    "measurements_from_columns",
]


def emap(fn: Callable[..., float], *args) -> np.ndarray:
    """Apply a scalar float function elementwise, bit-identically.

    ``args`` are 1-D arrays (or scalars, broadcast); each output element
    is ``fn(*row)`` computed on Python floats, exactly as the scalar
    engine would.
    """
    arrs = [np.asarray(a, dtype=float) for a in args]
    shape = np.broadcast_shapes(*(a.shape for a in arrs))
    count = int(np.prod(shape)) if shape else 1
    if len(arrs) == 1:
        col = np.broadcast_to(arrs[0], shape).tolist()
        return np.fromiter(map(fn, col), dtype=float, count=count)
    cols = [np.broadcast_to(a, shape).tolist() for a in arrs]
    return np.fromiter(map(fn, *cols), dtype=float, count=count)


def emap_where(
    mask, fn: Callable[..., float], *args, fill: float = 0.0
) -> np.ndarray:
    """:func:`emap` restricted to ``mask`` rows; ``fill`` elsewhere.

    Lets kernels mirror scalar branches guarded by conditions under
    which ``fn`` may be undefined (``log`` of values <= 1, division by a
    dead row's zero denominator).
    """
    mask = np.asarray(mask, dtype=bool)
    out = np.full(mask.shape, fill, dtype=float)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return out
    arrs = [
        np.broadcast_to(np.asarray(a, dtype=float), mask.shape) for a in args
    ]
    cols = [a[idx].tolist() for a in arrs]
    out[idx] = np.fromiter(map(fn, *cols), dtype=float, count=idx.size)
    return out


def knob_floats(configs: Sequence[Configuration], name: str) -> np.ndarray:
    """One knob as a float64 column over the config batch."""
    return np.array([c[name] for c in configs], dtype=float)


def knob_bools(configs: Sequence[Configuration], name: str) -> np.ndarray:
    """One boolean knob as a bool column over the config batch."""
    return np.array([bool(c[name]) for c in configs], dtype=bool)


def knob_values(configs: Sequence[Configuration], name: str) -> List:
    """One (categorical) knob as a plain value list over the batch."""
    return [c[name] for c in configs]


def knob_table(
    configs: Sequence[Configuration],
    name: str,
    table: Dict,
    column: int,
) -> np.ndarray:
    """Per-config lookup of one component of a choice table.

    ``table`` maps categorical values to tuples (e.g., codec ->
    (ratio, cpu_ms)); returns the ``column``-th component per config.
    """
    return np.array([table[c[name]][column] for c in configs], dtype=float)


def metric_columns(names: Sequence[str], n: int) -> Dict[str, np.ndarray]:
    """Zero-initialized metric accumulators, one column per metric."""
    return {k: np.zeros(n, dtype=float) for k in names}


def metrics_row(
    columns: Dict[str, List[float]], names: Sequence[str], i: int
) -> Dict[str, float]:
    """Row ``i`` of pre-``tolist()``-ed metric columns as a plain dict.

    Values must already be Python floats (``ndarray.tolist()``) so the
    emitted :class:`Measurement` hashes/reprs exactly like scalar ones.
    """
    return {k: columns[k][i] for k in names}


def measurements_from_columns(
    metric_cols: Dict[str, np.ndarray],
    names: Sequence[str],
    runtime: np.ndarray,
    cost: np.ndarray,
    failed: np.ndarray,
    failure_elapsed: np.ndarray,
    failure_cost: np.ndarray,
) -> List[Measurement]:
    """Assemble per-config Measurements from kernel output columns.

    Failed rows get ``runtime_s=inf``, the frozen metric values, an
    ``elapsed_before_failure_s`` entry, and the per-row failure cost —
    the exact shape the scalar engines produce on their early returns.
    """
    names_l = list(names)
    value_cols = [metric_cols[k].tolist() for k in names_l]
    runtime_l = runtime.tolist()
    cost_l = cost.tolist()
    failed_arr = np.asarray(failed, dtype=bool)
    rows = (
        [dict(zip(names_l, vals)) for vals in zip(*value_cols)]
        if value_cols
        else [{} for _ in runtime_l]
    )
    if not failed_arr.any():
        return [
            Measurement(runtime_s=rt, metrics=m, cost_units=cu)
            for rt, m, cu in zip(runtime_l, rows, cost_l)
        ]
    failed_l = failed_arr.tolist()
    f_elapsed_l = np.asarray(failure_elapsed, dtype=float).tolist()
    f_cost_l = np.asarray(failure_cost, dtype=float).tolist()
    out: List[Measurement] = []
    for i, m in enumerate(rows):
        if failed_l[i]:
            m["elapsed_before_failure_s"] = f_elapsed_l[i]
            out.append(
                Measurement(
                    runtime_s=float("inf"),
                    metrics=m,
                    failed=True,
                    cost_units=f_cost_l[i],
                )
            )
        else:
            out.append(
                Measurement(runtime_s=runtime_l[i], metrics=m, cost_units=cost_l[i])
            )
    return out
