"""Tuner implementations across the tutorial's six categories.

Importing this package registers all tuners in the name registry.

======================  =====================================================
Category                Tuners
======================  =====================================================
rule-based              ``rule-based`` (expert rulebook), ``default``
cost-modeling           ``cost-model`` (analytic what-if), ``stmm``,
                        ``mrtuner`` (PTC pipeline model)
simulation-based        ``trace-sim`` (trace replay), ``addm``
experiment-driven       ``ituned``, ``sard``, ``adaptive-sampling``,
                        ``genetic``, ``rrs``, ``random-search``,
                        ``grid-search``
machine-learning        ``ottertune``, ``bayesopt``, ``nn-tuner``,
                        ``ensemble``, ``ernest``, ``cem``
adaptive                ``colt``, ``mrmoulder``, ``dynamic-partition``,
                        ``online-memory``
======================  =====================================================
"""

from repro.tuners.adaptive import (
    ColtOnlineTuner,
    DriftDetector,
    MetricDriftDetector,
    DynamicPartitionTuner,
    MrMoulderTuner,
    OnlineMemoryTuner,
)
from repro.tuners.baseline import DefaultConfigTuner, GridSearchTuner, RandomSearchTuner
from repro.tuners.cost_model_mrtuner import MrTunerTuner, ptc_breakdown
from repro.tuners.cost_model import (
    CostModel,
    CostModelTuner,
    DbmsCostModel,
    HadoopCostModel,
    SparkCostModel,
    StmmMemoryTuner,
    cost_model_for,
)
from repro.tuners.experiment import (
    AdaptiveSamplingTuner,
    GeneticTuner,
    ITunedTuner,
    RecursiveRandomSearchTuner,
    SardRanker,
    SardTuner,
)
from repro.tuners.ml import (
    BayesOptTuner,
    CrossEntropyTuner,
    EnsembleTuner,
    ErnestTuner,
    NeuralNetTuner,
    OtterTuneRepository,
    OtterTuneTuner,
    build_repository,
)
from repro.tuners.rule_based import (
    ConfigNavigator,
    RuleBasedTuner,
    SpexValidator,
    TuningRule,
)
from repro.tuners.simulation import AddmDiagnoser, TraceSimulationTuner

__all__ = [
    "AdaptiveSamplingTuner",
    "AddmDiagnoser",
    "BayesOptTuner",
    "ColtOnlineTuner",
    "ConfigNavigator",
    "CostModel",
    "CostModelTuner",
    "CrossEntropyTuner",
    "DbmsCostModel",
    "DefaultConfigTuner",
    "DriftDetector",
    "DynamicPartitionTuner",
    "EnsembleTuner",
    "ErnestTuner",
    "GeneticTuner",
    "GridSearchTuner",
    "HadoopCostModel",
    "ITunedTuner",
    "MetricDriftDetector",
    "MrMoulderTuner",
    "MrTunerTuner",
    "NeuralNetTuner",
    "OnlineMemoryTuner",
    "OtterTuneRepository",
    "OtterTuneTuner",
    "RandomSearchTuner",
    "RecursiveRandomSearchTuner",
    "RuleBasedTuner",
    "SardRanker",
    "SardTuner",
    "SparkCostModel",
    "SpexValidator",
    "StmmMemoryTuner",
    "TraceSimulationTuner",
    "TuningRule",
    "build_repository",
    "cost_model_for",
    "ptc_breakdown",
]
