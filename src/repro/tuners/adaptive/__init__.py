"""Adaptive (online) tuners: COLT, mrMoulder, dynamic partitioning,
online memory rebalancing."""

from repro.tuners.adaptive.colt import ColtOnlineTuner
from repro.tuners.adaptive.drift import DriftDetector, MetricDriftDetector
from repro.tuners.adaptive.mrmoulder import MrMoulderTuner
from repro.tuners.adaptive.online_memory import OnlineMemoryTuner
from repro.tuners.adaptive.spark_partition import DynamicPartitionTuner

__all__ = [
    "ColtOnlineTuner",
    "DriftDetector",
    "MetricDriftDetector",
    "DynamicPartitionTuner",
    "MrMoulderTuner",
    "OnlineMemoryTuner",
]
