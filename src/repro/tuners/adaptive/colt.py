"""COLT-style continuous online tuning (Schnaitter et al., SIGMOD'06).

COLT's core idea, transplanted from index selection to parameter
tuning: while the workload stream executes, continuously estimate the
*gain* of candidate reconfigurations with a lightweight what-if model,
and reconfigure only when the projected cumulative gain over the
remaining stream outweighs the reconfiguration *cost* (a restart/warm-up
penalty).  Tunes a handful of knobs via local perturbations — COLT
deliberately works with few alternatives at a time.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.measurement import Measurement
from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.system import SystemUnderTune
from repro.core.tuner import OnlineTuner, StreamResult, StreamStep
from repro.core.workload import WorkloadStream
from repro.exec.resilience import FAILURE_POLICIES
from repro.tuners.adaptive.drift import DriftDetector
from repro.tuners.rule_based import SpexValidator
from repro.tuners.simulation import trace_replay_predict

__all__ = ["ColtOnlineTuner"]


@register_tuner("colt")
class ColtOnlineTuner(OnlineTuner):
    """Cost-vs-gain adaptive reconfiguration over a workload stream.

    Args:
        epoch: submissions between reconfiguration decisions.
        n_candidates: perturbed configurations scored per decision.
        reconfig_cost_s: charged (as projected cost, not wall time) per
            reconfiguration — warm-up, cache refill, connection churn.
        step_scale: relative size of local perturbations in unit space.
        warm_start: when tuned offline with a transfer prior, start the
            stream at the prior's best configuration instead of the
            system default — COLT only ever moves by local
            perturbations, so its starting point largely decides where
            it converges.
    """

    name = "colt"
    category = "adaptive"
    supports_initial_config = True

    def __init__(
        self,
        epoch: int = 2,
        n_candidates: int = 12,
        reconfig_cost_s: float = 5.0,
        step_scale: float = 0.15,
        failure_policy: Optional[str] = None,
        warm_start: bool = False,
    ):
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}"
            )
        self.epoch = epoch
        self.n_candidates = n_candidates
        self.reconfig_cost_s = reconfig_cost_s
        self.step_scale = step_scale
        #: Opt-in for the offline entry point (``tune``); the online
        #: stream loop reacts to failures directly by retreating.
        self.failure_policy = failure_policy
        self.warm_start = warm_start

    def tune_stream(
        self,
        system: SystemUnderTune,
        stream: WorkloadStream,
        rng: Optional[np.random.Generator] = None,
        initial_config: Optional[Configuration] = None,
    ) -> StreamResult:
        rng = rng or np.random.default_rng(0)
        space = system.config_space
        validator = SpexValidator(space)
        config = initial_config or system.default_configuration()
        steps: List[StreamStep] = []
        last_measurement: Optional[Measurement] = None
        submissions = list(stream)
        hot_set = submissions[0].signature().get("hot_set_mb", 1024.0)

        detector = DriftDetector(delta=0.05, threshold=0.4)
        for i, workload in enumerate(submissions):
            ran_config = config
            measurement = system.run(workload, ran_config)
            reconfigured = False
            remaining = len(submissions) - i - 1

            # A detected regime change forces an immediate decision
            # instead of waiting out the epoch.
            drifted = detector.update(measurement.runtime_s)
            # A hung submission (ok but unbounded runtime) carries no
            # usable baseline for the what-if model: skip the decision.
            decide = (
                ((i + 1) % self.epoch == 0 or drifted)
                and remaining > 0
                and measurement.ok
                and math.isfinite(measurement.runtime_s)
            )
            if decide:
                base = config.to_array()
                best_gain, best_candidate = 0.0, None
                for _ in range(self.n_candidates):
                    x = np.clip(
                        base + rng.normal(scale=self.step_scale, size=base.shape),
                        0.0, 1.0,
                    )
                    candidate = space.from_array_feasible(x, rng)
                    try:
                        predicted = trace_replay_predict(
                            system.kind, config, measurement, candidate, hot_set
                        )
                    except ValueError:
                        continue
                    gain = (measurement.runtime_s - predicted) * remaining
                    if gain > best_gain:
                        best_gain, best_candidate = gain, candidate
                if best_candidate is not None and best_gain > self.reconfig_cost_s:
                    config = best_candidate
                    reconfigured = True
            if not measurement.ok:
                # A crashed submission forces an immediate retreat to a
                # configuration known to work.
                config = system.default_configuration()
                reconfigured = True
            steps.append(
                StreamStep(
                    index=i,
                    workload_name=workload.name,
                    config=ran_config,
                    measurement=measurement,
                    reconfigured=reconfigured,
                )
            )
            if measurement.ok:
                last_measurement = measurement
        return StreamResult(tuner_name=self.name, steps=steps)
