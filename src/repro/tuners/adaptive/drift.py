"""Workload-drift detection for adaptive tuning.

Adaptive tuners (Table 1's sixth row) must notice that "the environment
changes".  :class:`DriftDetector` implements a two-sided Page–Hinkley
test over a runtime (or metric) stream: it flags a drift when the
cumulative deviation from the running mean exceeds a threshold, then
resets.  :class:`MetricDriftDetector` watches a whole metric vector and
flags when any component drifts — how a tuner can detect a workload
shift *before* the runtime regresses (e.g., the read/write mix moved).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

__all__ = ["DriftDetector", "MetricDriftDetector"]


def _validate_params(delta: float, threshold: float, min_samples: int) -> None:
    if delta < 0 or threshold <= 0:
        raise ValueError("delta must be >= 0 and threshold > 0")
    if min_samples < 2:
        raise ValueError("min_samples must be >= 2")


class DriftDetector:
    """Two-sided Page–Hinkley change detection on a scalar stream.

    Args:
        delta: magnitude of change considered negligible, as a fraction
            of the running mean (robust to scale).
        threshold: cumulative deviation (in the same fractional units)
            that triggers a drift signal.
        min_samples: observations required before signalling.
    """

    def __init__(
        self,
        delta: float = 0.05,
        threshold: float = 0.5,
        min_samples: int = 3,
    ):
        _validate_params(delta, threshold, min_samples)
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._cum_up = 0.0
        self._cum_down = 0.0
        self._min_up = 0.0
        self._max_down = 0.0

    @property
    def n_samples(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean

    def update(self, value: float) -> bool:
        """Feed one observation; True if a drift was detected (the
        detector resets itself afterwards so the next regime gets a
        fresh baseline)."""
        if not math.isfinite(value):
            # A crash is a drift by definition.
            self.reset()
            return True
        self._n += 1
        self._mean += (value - self._mean) / self._n
        scale = max(abs(self._mean), 1e-12)
        deviation = (value - self._mean) / scale

        self._cum_up += deviation - self.delta
        self._cum_down += deviation + self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._max_down = max(self._max_down, self._cum_down)

        if self._n < self.min_samples:
            return False
        drifted = (
            self._cum_up - self._min_up > self.threshold
            or self._max_down - self._cum_down > self.threshold
        )
        if drifted:
            self.reset()
        return drifted

    def to_jsonable(self) -> Dict[str, Any]:
        """Snapshot the detector's mutable state (checkpoint support)."""
        return {
            "kind": "drift_detector",
            "delta": self.delta,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "n": self._n,
            "mean": self._mean,
            "cum_up": self._cum_up,
            "cum_down": self._cum_down,
            "min_up": self._min_up,
            "max_down": self._max_down,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "DriftDetector":
        if payload.get("kind") != "drift_detector":
            raise ValueError(f"not a drift_detector payload: {payload.get('kind')!r}")
        detector = cls(
            delta=payload["delta"],
            threshold=payload["threshold"],
            min_samples=payload["min_samples"],
        )
        detector._n = int(payload["n"])
        detector._mean = float(payload["mean"])
        detector._cum_up = float(payload["cum_up"])
        detector._cum_down = float(payload["cum_down"])
        detector._min_up = float(payload["min_up"])
        detector._max_down = float(payload["max_down"])
        return detector


class MetricDriftDetector:
    """Per-metric Page–Hinkley detectors over a metric mapping.

    ``update`` returns the names of metrics that drifted this step
    (empty list = stable).  Constant metrics never fire.
    """

    def __init__(self, delta: float = 0.1, threshold: float = 1.0, min_samples: int = 3):
        # Validate eagerly: the lazy per-metric detectors would otherwise
        # defer a bad delta/threshold to the first update() call.
        _validate_params(delta, threshold, min_samples)
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self._detectors: Dict[str, DriftDetector] = {}

    def _detector(self, name: str) -> DriftDetector:
        if name not in self._detectors:
            self._detectors[name] = DriftDetector(
                delta=self.delta, threshold=self.threshold,
                min_samples=self.min_samples,
            )
        return self._detectors[name]

    def update(self, metrics: Mapping[str, float]) -> List[str]:
        drifted = []
        for name, value in metrics.items():
            if self._detector(name).update(float(value)):
                drifted.append(name)
        return drifted

    def reset(self) -> None:
        for detector in self._detectors.values():
            detector.reset()

    def to_jsonable(self) -> Dict[str, Any]:
        """Snapshot all per-metric detectors (checkpoint support)."""
        return {
            "kind": "metric_drift_detector",
            "delta": self.delta,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "detectors": {
                name: detector.to_jsonable()
                for name, detector in sorted(self._detectors.items())
            },
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "MetricDriftDetector":
        if payload.get("kind") != "metric_drift_detector":
            raise ValueError(
                f"not a metric_drift_detector payload: {payload.get('kind')!r}"
            )
        detector = cls(
            delta=payload["delta"],
            threshold=payload["threshold"],
            min_samples=payload["min_samples"],
        )
        for name, sub in payload["detectors"].items():
            detector._detectors[name] = DriftDetector.from_jsonable(sub)
        return detector
