"""mrMoulder: recommendation-based adaptive tuning (Cai et al., FGCS'19).

For big-data platforms where each submission is expensive: keep a case
base of (workload signature → best known configuration); when a new
submission arrives, bootstrap from the most similar case (or the
default), then refine online with small hill-climbing moves informed by
each completed execution.  The case base persists across streams, so
the tuner gets better the more it is used — the "recommendation" half
of the name.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.system import SystemUnderTune
from repro.core.tuner import OnlineTuner, StreamResult, StreamStep
from repro.core.workload import Workload, WorkloadStream

__all__ = ["MrMoulderTuner"]


def _signature_distance(a: Dict[str, float], b: Dict[str, float]) -> float:
    keys = sorted(set(a) | set(b))
    total = 0.0
    for k in keys:
        va, vb = a.get(k, 0.0), b.get(k, 0.0)
        scale = max(abs(va), abs(vb), 1.0)
        total += ((va - vb) / scale) ** 2
    return math.sqrt(total)


@register_tuner("mrmoulder")
class MrMoulderTuner(OnlineTuner):
    """Case-based bootstrap + online hill climbing."""

    name = "mrmoulder"
    category = "adaptive"

    def __init__(self, step_scale: float = 0.12, n_probe: int = 4):
        self.step_scale = step_scale
        self.n_probe = n_probe
        # Case base: workload name -> (signature, best config, runtime).
        self._cases: Dict[str, Tuple[Dict[str, float], Configuration, float]] = {}

    def recommend(self, workload: Workload, default: Configuration) -> Configuration:
        """Closest-case configuration, or the default on a cold start."""
        if not self._cases:
            return default
        sig = workload.signature()
        best_name = min(
            self._cases,
            key=lambda name: _signature_distance(sig, self._cases[name][0]),
        )
        return self._cases[best_name][1]

    def _remember(self, workload: Workload, config: Configuration, runtime: float) -> None:
        sig = workload.signature()
        known = self._cases.get(workload.name)
        if known is None or runtime < known[2]:
            self._cases[workload.name] = (sig, config, runtime)

    def tune_stream(
        self,
        system: SystemUnderTune,
        stream: WorkloadStream,
        rng: Optional[np.random.Generator] = None,
    ) -> StreamResult:
        rng = rng or np.random.default_rng(0)
        space = system.config_space
        default = system.default_configuration()
        steps: List[StreamStep] = []

        current: Optional[Configuration] = None
        previous: Optional[Configuration] = None
        current_workload: Optional[str] = None

        for i, workload in enumerate(stream):
            if workload.name != current_workload:
                # New workload phase: consult the case base.
                current = self.recommend(workload, default)
                current_workload = workload.name
            measurement = system.run(workload, current)
            if measurement.ok:
                self._remember(workload, current, measurement.runtime_s)
            steps.append(
                StreamStep(
                    index=i,
                    workload_name=workload.name,
                    config=current,
                    measurement=measurement,
                    reconfigured=previous is not None and current != previous,
                )
            )
            previous = current
            # Next submission: alternate exploitation of the best known
            # case with exploratory local moves around it; a crash pins
            # the next run to the safe default.
            if not measurement.ok:
                current = default
            elif workload.name in self._cases:
                best_config = self._cases[workload.name][1]
                if i % 2 == 0 and rng.random() < 0.7:
                    base = best_config.to_array()
                    x = np.clip(
                        base + rng.normal(scale=self.step_scale, size=base.shape),
                        0.0, 1.0,
                    )
                    current = space.from_array_feasible(x, rng)
                else:
                    current = best_config
        return StreamResult(tuner_name=self.name, steps=steps)
