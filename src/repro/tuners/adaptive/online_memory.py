"""Online memory rebalancing — STMM's loop run as a true adaptive tuner.

Where :class:`~repro.tuners.cost_model.StmmMemoryTuner` runs the
cost-benefit loop inside an offline tuning session, this variant applies
it *while a workload stream executes*: after each submission it reads
the memory-pressure statistics and shifts memory between the buffer
pool and operator memory for the next submission.  The pairing lets the
benchmarks contrast the same mechanism across the cost-modeling and
adaptive rows of Table 1.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.registry import register_tuner
from repro.core.system import SystemUnderTune
from repro.core.tuner import OnlineTuner, StreamResult, StreamStep
from repro.core.workload import WorkloadStream
from repro.tuners.rule_based import SpexValidator, _cluster_of

__all__ = ["OnlineMemoryTuner"]


@register_tuner("online-memory")
class OnlineMemoryTuner(OnlineTuner):
    """Per-submission memory rebalancing for the DBMS."""

    name = "online-memory"
    category = "adaptive"

    def __init__(self, step_fraction: float = 0.4):
        if not (0.0 < step_fraction <= 1.0):
            raise ValueError("step_fraction in (0, 1]")
        self.step_fraction = step_fraction

    def tune_stream(
        self,
        system: SystemUnderTune,
        stream: WorkloadStream,
        rng: Optional[np.random.Generator] = None,
    ) -> StreamResult:
        space = system.config_space
        config = system.default_configuration()
        if "buffer_pool_mb" not in space or "work_mem_mb" not in space:
            steps = [
                StreamStep(i, w.name, config, system.run(w, config), False)
                for i, w in enumerate(stream)
            ]
            return StreamResult(tuner_name=self.name, steps=steps)

        memory_mb = _cluster_of(system).min_node.memory_mb
        validator = SpexValidator(space)
        steps: List[StreamStep] = []
        best_runtime = float("inf")
        best_config = config
        step = self.step_fraction
        for i, workload in enumerate(stream):
            measurement = system.run(workload, config)
            reconfigured = False
            if measurement.ok and measurement.runtime_s < best_runtime:
                best_runtime = measurement.runtime_s
                best_config = config
            elif measurement.ok and measurement.runtime_s > best_runtime * 1.05:
                # Regression: damp the step and restart from the best
                # point seen (STMM's oscillation control).
                step = max(step * 0.5, 0.05)
                config = best_config
            if measurement.ok:
                miss = 1.0 - measurement.metric("buffer_hit_ratio", 0.9)
                spill = measurement.metric("spill_mb")
                sig = workload.signature()
                bp = float(config["buffer_pool_mb"])
                wm = float(config["work_mem_mb"])
                bp_benefit = miss * sig.get("scan_mb", 1000.0) / max(bp, 64.0)
                wm_benefit = spill / max(wm * sig.get("sessions", 8.0), 1.0)
                if bp_benefit >= wm_benefit:
                    bp *= 1.0 + step
                    wm *= 1.0 - 0.25 * step
                else:
                    wm *= 1.0 + step
                    bp *= 1.0 - 0.25 * step
                sessions = sig.get("sessions", 8.0)
                while bp + wm * sessions > 0.6 * memory_mb:
                    bp *= 0.9
                    wm *= 0.9
                values = validator.repair_values({
                    **config.to_dict(),
                    "buffer_pool_mb": space["buffer_pool_mb"].clip(bp),
                    "work_mem_mb": space["work_mem_mb"].clip(wm),
                })
                new_config = space.configuration(values)
                reconfigured = new_config != config
                next_config = new_config
            else:
                next_config = system.default_configuration()
                reconfigured = True
            steps.append(
                StreamStep(
                    index=i,
                    workload_name=workload.name,
                    config=config,
                    measurement=measurement,
                    reconfigured=reconfigured,
                )
            )
            config = next_config
        return StreamResult(tuner_name=self.name, steps=steps)
