"""Dynamic configuration of partitioning in Spark (Gounaris et al.,
TPDS'17).

Adjusts ``shuffle_partitions`` between submissions from runtime
feedback only — no model, no search: multiply the partition count when
execution memory spills, shrink it when task-launch overhead dominates,
and settle once neither signal fires.  The published approach's point is
that this single knob captures most of Spark's easy wins and can be
driven entirely by observable symptoms.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.registry import register_tuner
from repro.core.system import SystemUnderTune
from repro.core.tuner import OnlineTuner, StreamResult, StreamStep
from repro.core.workload import WorkloadStream

__all__ = ["DynamicPartitionTuner"]


@register_tuner("dynamic-partition")
class DynamicPartitionTuner(OnlineTuner):
    """Feedback-driven shuffle-partition adaptation for Spark."""

    name = "dynamic-partition"
    category = "adaptive"

    def __init__(
        self,
        grow: float = 1.6,
        shrink: float = 0.6,
        overhead_threshold: float = 0.15,
    ):
        if grow <= 1.0 or not (0.0 < shrink < 1.0):
            raise ValueError("grow must be > 1 and shrink in (0, 1)")
        self.grow = grow
        self.shrink = shrink
        self.overhead_threshold = overhead_threshold

    def tune_stream(
        self,
        system: SystemUnderTune,
        stream: WorkloadStream,
        rng: Optional[np.random.Generator] = None,
    ) -> StreamResult:
        space = system.config_space
        config = system.default_configuration()
        knob = "shuffle_partitions"
        if knob not in space:
            # Not a Spark-like system: run the stream untouched.
            steps = [
                StreamStep(i, w.name, config, system.run(w, config), False)
                for i, w in enumerate(stream)
            ]
            return StreamResult(tuner_name=self.name, steps=steps)

        steps: List[StreamStep] = []
        best_runtime = np.inf
        best_partitions = config[knob]
        for i, workload in enumerate(stream):
            ran_config = config
            measurement = system.run(workload, ran_config)
            reconfigured = False
            partitions = float(config[knob])
            if measurement.ok:
                if measurement.runtime_s < best_runtime:
                    best_runtime = measurement.runtime_s
                    best_partitions = config[knob]
                spilled = measurement.metric("spilled_mb")
                launch = measurement.metric("task_launch_s")
                overhead_frac = launch / max(measurement.runtime_s, 1e-9)
                if spilled > 0:
                    partitions *= self.grow
                elif overhead_frac > self.overhead_threshold:
                    partitions *= self.shrink
                elif measurement.runtime_s > best_runtime * 1.1:
                    partitions = float(best_partitions)  # regression: revert
            else:
                partitions *= self.grow  # OOM: more, smaller partitions
            new_value = space[knob].clip(partitions)
            if new_value != config[knob]:
                config = config.replace(**{knob: new_value})
                reconfigured = True
            steps.append(
                StreamStep(
                    index=i,
                    workload_name=workload.name,
                    config=ran_config,
                    measurement=measurement,
                    reconfigured=reconfigured,
                )
            )
        return StreamResult(tuner_name=self.name, steps=steps)
