"""Baseline tuners: vendor defaults, random search, grid search.

Not one of the paper's six categories, but every evaluation needs them:
the default configuration is what "untuned" means, and random/grid
search are the naive experiment-driven floors that principled approaches
must beat.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.exceptions import BudgetExhausted
from repro.mlkit.sampling import latin_hypercube

__all__ = ["DefaultConfigTuner", "RandomSearchTuner", "GridSearchTuner"]


@register_tuner("default")
class DefaultConfigTuner(Tuner):
    """Run the vendor default once and recommend it (the null tuner)."""

    name = "default"
    category = "rule-based"

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        default = session.default_config()
        session.evaluate(default, tag="default")
        return default


@register_tuner("random-search")
class RandomSearchTuner(Tuner):
    """Uniform random sampling of feasible configurations.

    Always evaluates the default first so the result can never be worse
    than untuned.
    """

    name = "random-search"
    category = "experiment-driven"

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        session.evaluate(session.default_config(), tag="default")
        while session.can_run():
            config = session.space.sample_configuration(session.rng)
            session.evaluate(config, tag="random")
        return None


@register_tuner("grid-search")
class GridSearchTuner(Tuner):
    """Coordinate grid over the most promising knobs.

    A full factorial over a ~28-knob space is hopeless, so the grid
    covers ``n_knobs`` dimensions (by default the first knobs of the
    catalog, or an explicit list) at ``levels`` levels each, holding the
    rest at defaults — how practitioners actually grid-search.
    """

    name = "grid-search"
    category = "experiment-driven"

    def __init__(self, knobs: Optional[List[str]] = None, levels: int = 3, n_knobs: int = 3):
        if levels < 2:
            raise ValueError("levels must be >= 2")
        self.knobs = knobs
        self.levels = levels
        self.n_knobs = n_knobs

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        names = self.knobs or space.names()[: self.n_knobs]
        grids = {n: space[n].grid(self.levels) for n in names}
        session.evaluate(session.default_config(), tag="default")

        def recurse(idx: int, overrides: dict) -> None:
            if idx == len(names):
                try:
                    config = space.partial(overrides)
                except Exception:
                    return  # infeasible grid corner
                session.evaluate(config, tag="grid")
                return
            for value in grids[names[idx]]:
                overrides[names[idx]] = value
                recurse(idx + 1, overrides)
            del overrides[names[idx]]

        recurse(0, {})
        return None
