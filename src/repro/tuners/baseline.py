"""Baseline tuners: vendor defaults, random search, grid search.

Not one of the paper's six categories, but every evaluation needs them:
the default configuration is what "untuned" means, and random/grid
search are the naive experiment-driven floors that principled approaches
must beat.

All three are :class:`~repro.core.driver.SearchTuner` strategies — the
simplest examples of the ask/tell contract.  Random search proposes a
chunk of samples per ask and grid search proposes the whole grid at
once, so both parallelize through the driver without any code of their
own.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.parameters import Configuration
from repro.core.registry import register_tuner

__all__ = ["DefaultConfigTuner", "RandomSearchTuner", "GridSearchTuner"]


@register_tuner("default")
class DefaultConfigTuner(SearchTuner):
    """Run the vendor default once and recommend it (the null tuner)."""

    name = "default"
    category = "rule-based"

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        return []

    def recommend(self, state: SearchState) -> Optional[Configuration]:
        return state.default_config()


@register_tuner("random-search")
class RandomSearchTuner(SearchTuner):
    """Uniform random sampling of feasible configurations.

    Always evaluates the default first so the result can never be worse
    than untuned.  Samples are proposed in chunks so a parallel runner
    can spread them across workers.
    """

    name = "random-search"
    category = "experiment-driven"

    #: Samples proposed per ask; purely an execution batching choice —
    #: uniform sampling has no sequential dependence, so any chunking
    #: observes the identical sequence.
    chunk = 8

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        n = min(self.chunk, state.remaining_runs)
        return [
            Candidate(state.space.sample_configuration(state.rng), tag="random")
            for _ in range(max(n, 1))
        ]


@register_tuner("grid-search")
class GridSearchTuner(SearchTuner):
    """Coordinate grid over the most promising knobs.

    A full factorial over a ~28-knob space is hopeless, so the grid
    covers ``n_knobs`` dimensions (by default the first knobs of the
    catalog, or an explicit list) at ``levels`` levels each, holding the
    rest at defaults — how practitioners actually grid-search.  The
    entire grid is one ask: grid points are independent, so the driver
    may fan them all out at once.
    """

    name = "grid-search"
    category = "experiment-driven"

    def __init__(self, knobs: Optional[List[str]] = None, levels: int = 3, n_knobs: int = 3):
        if levels < 2:
            raise ValueError("levels must be >= 2")
        self.knobs = knobs
        self.levels = levels
        self.n_knobs = n_knobs

    def setup(self, state: SearchState) -> None:
        self._asked = False

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        if self._asked:
            return []
        self._asked = True
        space = state.space
        names = self.knobs or space.names()[: self.n_knobs]
        grids = {n: space[n].grid(self.levels) for n in names}
        configs: List[Configuration] = []

        def recurse(idx: int, overrides: dict) -> None:
            if idx == len(names):
                try:
                    configs.append(space.partial(overrides))
                except Exception:
                    pass  # infeasible grid corner
                return
            for value in grids[names[idx]]:
                overrides[names[idx]] = value
                recurse(idx + 1, overrides)
            del overrides[names[idx]]

        recurse(0, {})
        return [Candidate(c, tag="grid") for c in configs]
