"""Shared helpers for tuner implementations."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.measurement import Measurement, TuningHistory
from repro.core.parameters import Configuration, ConfigurationSpace
from repro.core.session import TuningSession

__all__ = [
    "FAILURE_PENALTY_FACTOR",
    "failure_response",
    "penalized_runtime",
    "history_to_training_data",
    "candidate_pool",
    "evaluate_prior_seeds",
    "ResponseReplay",
]

#: Failed runs enter surrogate models at this multiple of the worst
#: successful runtime, steering search away from the failure region
#: without destroying the model's scale.
FAILURE_PENALTY_FACTOR = 3.0


def _finite_successes(history: TuningHistory) -> List[float]:
    return [
        o.runtime_s for o in history.successful()
        if math.isfinite(o.runtime_s)
    ]


def failure_response(history: TuningHistory, policy: str = "penalize") -> Optional[float]:
    """The training-data value standing in for one failed run.

    ``penalize`` maps failures to a large finite penalty (the
    historical behaviour), ``impute`` to the median successful runtime
    (failures carry no slowness signal, only infeasibility), and
    ``discard`` to ``None`` — the caller drops the row entirely.
    """
    if policy == "discard":
        return None
    successes = _finite_successes(history)
    if policy == "impute":
        return float(np.median(successes)) if successes else 100.0
    worst = max(successes, default=100.0)
    return worst * FAILURE_PENALTY_FACTOR


def penalized_runtime(measurement: Measurement, history: TuningHistory) -> float:
    """Runtime for model fitting: failures map to a large finite penalty.

    Hung runs (successful, infinite runtime) are treated as failures —
    an unbounded observation would destroy any surrogate's scale.
    """
    if measurement.ok and math.isfinite(measurement.runtime_s):
        return measurement.runtime_s
    return failure_response(history, "penalize")


def history_to_training_data(
    session: TuningSession,
    include_prior: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """All real observations as (X, y), failures handled per policy.

    The session's :attr:`~repro.core.session.TuningSession
    .failure_policy` (``penalize`` / ``discard`` / ``impute``) decides
    how failed or hung runs enter the training set — tuners opt in by
    being constructed with a ``failure_policy`` or tuned under an
    explicit :class:`~repro.exec.resilience.ExecutionPolicy`.

    With ``include_prior`` (warm-started tuners), the session's
    transfer-prior pseudo-observations are stacked *before* the real
    rows — runtimes already scaled to this workload's probe anchor by
    :func:`repro.kb.warmstart.warm_start_prior`.  Real observations of
    the same configuration naturally dominate the surrogate as they
    accumulate.

    Returns empty arrays when nothing usable was observed yet.
    """
    policy = getattr(session, "failure_policy", "penalize")
    rows: List[Tuple[Configuration, float]] = []
    for o in session.history.real_observations():
        if not o.full_fidelity:
            # Low-fidelity screens measure a scaled approximation;
            # mixing their runtimes (or failure penalties derived from
            # them) into full-scale training data would corrupt every
            # surrogate's response surface.
            continue
        if o.ok and math.isfinite(o.runtime_s):
            rows.append((o.config, o.runtime_s))
            continue
        response = failure_response(session.history, policy)
        if response is not None:
            rows.append((o.config, response))
    prior_X, prior_y = (
        session.prior_training_data() if include_prior
        else (np.zeros((0, session.space.dimension)), np.zeros(0))
    )
    if not rows:
        return prior_X, prior_y
    X = np.stack([config.to_array() for config, _ in rows])
    y = np.array([runtime for _, runtime in rows])
    if len(prior_y):
        X = np.vstack([prior_X, X])
        y = np.concatenate([prior_y, y])
    return X, y


def evaluate_prior_seeds(
    session: TuningSession, k: int = 3, reserve: int = 1
) -> int:
    """Evaluate the transfer prior's top configurations, if any.

    The universal warm-start opening move: instead of burning the whole
    init budget on random/space-filling samples, spend up to ``k`` runs
    on configurations that won similar past sessions.  Keeps at least
    ``reserve`` runs of budget untouched for the search proper.

    Returns the number of seed runs actually executed (0 when the
    session has no prior — cold-start behaviour is unchanged).
    """
    if session.prior is None:
        return 0
    evaluated = 0
    for i, config in enumerate(session.prior_best_configs(k=k)):
        if session.remaining_runs <= reserve:
            break
        if session.evaluate_if_budget(config, tag=f"prior-{i}") is None:
            break
        evaluated += 1
    return evaluated


class ResponseReplay:
    """Incremental failure-policy scoring for ask/tell strategies.

    :func:`failure_response` computes a failure's stand-in value from
    the successes observed *so far* — which means batch results must be
    scored one at a time, in execution order, to reproduce what a
    serial loop would have seen.  Strategies feed every told
    observation through :meth:`account` and use the returned response
    as the training/selection value.

    Args:
        policy: one of ``penalize`` / ``discard`` / ``impute``.
    """

    def __init__(self, policy: str = "penalize"):
        self.policy = policy
        self._successes: List[float] = []

    def account(self, observation) -> Optional[float]:
        """Score one observation; ``None`` means "drop this row".

        Successful finite runtimes are returned as-is and join the
        success pool; failures (and hung runs) are mapped per the
        policy against the successes accounted so far.
        """
        measurement = observation.measurement
        if measurement.ok and math.isfinite(measurement.runtime_s):
            self._successes.append(measurement.runtime_s)
            return measurement.runtime_s
        if self.policy == "discard":
            return None
        if self.policy == "impute":
            return (
                float(np.median(self._successes))
                if self._successes
                else 100.0
            )
        return max(self._successes, default=100.0) * FAILURE_PENALTY_FACTOR


def candidate_pool(
    space: ConfigurationSpace,
    rng: np.random.Generator,
    n_random: int = 256,
    anchors: Optional[List[Configuration]] = None,
    jitter: float = 0.08,
) -> List[Configuration]:
    """Random candidates plus local perturbations of anchor configs.

    The mix lets acquisition optimizers both explore globally and refine
    around incumbents; infeasible decodes are repaired toward feasible
    neighbors.
    """
    candidates: List[Configuration] = []
    for _ in range(n_random):
        try:
            candidates.append(space.sample_configuration(rng))
        except Exception:
            continue
    for anchor in anchors or []:
        base = anchor.to_array()
        for _ in range(16):
            x = np.clip(base + rng.normal(scale=jitter, size=base.shape), 0.0, 1.0)
            candidates.append(space.from_array_feasible(x, rng))
    return candidates
