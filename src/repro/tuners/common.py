"""Shared helpers for tuner implementations."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.measurement import Measurement, TuningHistory
from repro.core.parameters import Configuration, ConfigurationSpace
from repro.core.session import TuningSession

__all__ = [
    "FAILURE_PENALTY_FACTOR",
    "penalized_runtime",
    "history_to_training_data",
    "candidate_pool",
]

#: Failed runs enter surrogate models at this multiple of the worst
#: successful runtime, steering search away from the failure region
#: without destroying the model's scale.
FAILURE_PENALTY_FACTOR = 3.0


def penalized_runtime(measurement: Measurement, history: TuningHistory) -> float:
    """Runtime for model fitting: failures map to a large finite penalty."""
    if measurement.ok:
        return measurement.runtime_s
    worst = max(
        (o.runtime_s for o in history.successful()), default=100.0
    )
    return worst * FAILURE_PENALTY_FACTOR


def history_to_training_data(
    session: TuningSession,
) -> Tuple[np.ndarray, np.ndarray]:
    """All real observations as (X, y), failures penalized.

    Returns empty arrays when nothing was observed yet.
    """
    obs = session.history.real_observations()
    if not obs:
        return np.zeros((0, session.space.dimension)), np.zeros(0)
    X = np.stack([o.config.to_array() for o in obs])
    y = np.array(
        [penalized_runtime(o.measurement, session.history) for o in obs]
    )
    return X, y


def candidate_pool(
    space: ConfigurationSpace,
    rng: np.random.Generator,
    n_random: int = 256,
    anchors: Optional[List[Configuration]] = None,
    jitter: float = 0.08,
) -> List[Configuration]:
    """Random candidates plus local perturbations of anchor configs.

    The mix lets acquisition optimizers both explore globally and refine
    around incumbents; infeasible decodes are repaired toward feasible
    neighbors.
    """
    candidates: List[Configuration] = []
    for _ in range(n_random):
        try:
            candidates.append(space.sample_configuration(rng))
        except Exception:
            continue
    for anchor in anchors or []:
        base = anchor.to_array()
        for _ in range(16):
            x = np.clip(base + rng.normal(scale=jitter, size=base.shape), 0.0, 1.0)
            candidates.append(space.from_array_feasible(x, rng))
    return candidates
