"""Cost-modeling tuners: analytic what-if models and STMM.

The category's signature move is predicting performance *without*
running experiments, from closed-form formulas over system internals.
The models here are deliberately simpler than the simulators they
predict — they ignore skew, stragglers, lock contention, and planner
mischoices — which reproduces the category's Table 1 weakness profile
("models often based on simplified assumptions", "not effective on
heterogeneous clusters") while remaining "very efficient" and decently
accurate in basic scenarios.

:class:`StmmMemoryTuner` reimplements the published DB2 Self-Tuning
Memory Manager loop: estimate each memory consumer's marginal benefit
from observed statistics, then shift memory from low-benefit to
high-benefit consumers.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.core.workload import Workload
from repro.systems.cluster import Cluster
from repro.tuners.rule_based import SpexValidator, _cluster_of

__all__ = [
    "CostModel",
    "DbmsCostModel",
    "HadoopCostModel",
    "SparkCostModel",
    "cost_model_for",
    "CostModelTuner",
    "StmmMemoryTuner",
]


class CostModel:
    """Analytic runtime predictor: seconds = f(workload, config, cluster)."""

    kind: str = ""

    def predict(
        self, workload: Workload, config: Configuration, cluster: Cluster
    ) -> float:
        raise NotImplementedError


def dbms_memory_infeasible(
    config: Configuration, memory_mb: float, sessions: float, workers: float
) -> bool:
    """The documented DBMS memory-sizing rule: static allocations plus
    per-session operator memory must fit in RAM.  Any competent modeler
    includes this check, so the analytic models do too."""
    static = (
        config["buffer_pool_mb"]
        + config["wal_buffers_mb"]
        + config["temp_buffers_mb"]
        + config["max_connections"] * 1.5
    )
    operator = config["work_mem_mb"] * (1.0 + 0.5 * config["hash_mem_multiplier"])
    return static + operator * (sessions + workers) > memory_mb


class DbmsCostModel(CostModel):
    """Closed-form DBMS model: buffer hit curve, spill volume, commit
    policy; ignores locks, checkpoint stalls, planner mistakes."""

    kind = "dbms"

    def predict(
        self, workload: Workload, config: Configuration, cluster: Cluster
    ) -> float:
        sig = workload.signature()
        node = cluster.min_node
        workers = min(int(config["max_parallel_workers"]), cluster.total_cores)
        if dbms_memory_infeasible(
            config, node.memory_mb, sig.get("sessions", 8.0), workers
        ):
            return float("inf")
        bp = float(config["buffer_pool_mb"])
        ws = max(sig["hot_set_mb"], 1.0)
        # The model's hit-rate law differs from the real curve (a
        # textbook simplification): saturation arrives too early.
        hit = min(0.995, bp / (bp + 0.25 * ws))

        io_s = sig["scan_mb"] * (1.0 - hit) / node.disk_read_mbps / len(cluster)
        # Simplified Amdahl with a fixed 85% parallel fraction.
        cpu_s = sig["scan_mb"] * 2.0 / 1000.0 / cluster.mean_cpu_speed()
        cpu_s *= 0.15 + 0.85 / max(workers, 1)

        per_query_sort = sig["sort_mb"] / max(sig["n_queries"], 1.0)
        runs = per_query_sort / max(float(config["work_mem_mb"]), 0.5)
        spill_s = 0.0
        if runs > 1.0:
            passes = max(1, math.ceil(math.log(runs, 16)))
            spill_s = 2.0 * sig["sort_mb"] * passes / (
                0.5 * (node.disk_read_mbps + node.disk_write_mbps)
            )
        hash_mem = config["work_mem_mb"] * config["hash_mem_multiplier"]
        per_query_hash = sig["hash_mb"] / max(sig["n_queries"], 1.0)
        if per_query_hash > hash_mem:
            spill_s += 2.5 * sig["hash_mb"] / (
                0.5 * (node.disk_read_mbps + node.disk_write_mbps)
            )

        olap_s = max(io_s + spill_s, cpu_s)

        oltp_s = 0.0
        if sig["n_transactions"] > 0:
            eff_iops = node.disk_random_iops * math.sqrt(
                min(float(config["io_concurrency"]), 64.0)
            )
            read_s = 8.0 * (1.0 - hit) / eff_iops
            flush_s = 1.0 / node.disk_random_iops
            policy = config["log_flush_policy"]
            commit_s = {"commit": flush_s, "batch": 0.4 * flush_s, "async": 0.05 * flush_s}[policy]
            tx_s = read_s + commit_s + 0.0003
            sessions = min(sig.get("sessions", 8), float(config["max_connections"]))
            tps = max(sessions, 1.0) / tx_s
            oltp_s = sig["n_transactions"] / tps
        return max(olap_s + oltp_s, 1e-3)


class HadoopCostModel(CostModel):
    """Starfish-flavoured phase model from job statistics; ignores skew,
    stragglers, and slot contention subtleties."""

    kind = "hadoop"

    def predict(
        self, workload: Workload, config: Configuration, cluster: Cluster
    ) -> float:
        sig = workload.signature()
        node = cluster.min_node
        n_jobs = max(sig["n_jobs"], 1.0)
        input_mb = sig["input_mb"] / n_jobs
        shuffle_mb = sig["shuffle_mb"] / n_jobs
        if config["combiner_enabled"] and sig["combiner"] > 0:
            shuffle_mb *= 1.0 - sig["combiner"]
        if config["map_output_compress"]:
            shuffle_mb *= 0.55

        n_maps = max(1.0, input_mb / float(config["dfs_block_size_mb"]))
        map_slots = sum(
            min(n.cores, int(n.memory_mb * 0.9 // config["mapreduce_map_memory_mb"]))
            for n in cluster.nodes
        )
        if map_slots == 0:
            return float("inf")
        per_map = input_mb / n_maps
        map_task_s = per_map / node.disk_read_mbps + per_map * sig["map_cpu"] / 1000.0
        map_s = math.ceil(n_maps / map_slots) * map_task_s

        net_mbps = sum(n.network_mbps for n in cluster.nodes) / 8.0
        shuffle_s = shuffle_mb / net_mbps

        n_red = float(config["mapreduce_job_reduces"])
        red_slots = sum(
            min(n.cores, int(n.memory_mb * 0.9 // config["mapreduce_reduce_memory_mb"]))
            for n in cluster.nodes
        )
        if red_slots == 0:
            return float("inf")
        per_red = shuffle_mb / n_red
        red_task_s = (
            per_red / node.disk_read_mbps
            + per_red * sig["reduce_cpu"] / 1000.0
            + per_red / node.disk_write_mbps
        )
        red_s = math.ceil(n_red / red_slots) * red_task_s + 0.3 * n_red / red_slots
        return max(n_jobs * (map_s + shuffle_s + red_s + 2.0), 1e-3)


class SparkCostModel(CostModel):
    """Ernest-flavoured model: serial + parallel + shuffle terms over the
    allocated slots; ignores GC and partial cache fits."""

    kind = "spark"

    def predict(
        self, workload: Workload, config: Configuration, cluster: Cluster
    ) -> float:
        sig = workload.signature()
        node = cluster.min_node
        exec_mem = float(config["executor_memory_mb"])
        per_node = max(
            0,
            min(
                int(node.memory_mb * 0.95 // (exec_mem + 300.0)),
                node.cores // max(1, int(config["executor_cores"])),
            ),
        )
        n_exec = min(int(config["num_executors"]), per_node * len(cluster))
        if n_exec == 0:
            return float("inf")
        slots = n_exec * int(config["executor_cores"])

        data_mb = sig["input_mb"] * max(sig["iterations"], 1.0) ** 0.5
        ser = 0.9 if config["serializer"] == "kryo" else 2.5
        cpu_s = data_mb * (sig["cpu_density"] + ser) / 1000.0 / slots
        io_s = sig["input_mb"] / node.disk_read_mbps / n_exec
        shuffle_s = (
            sig["shuffle_stages"] * data_mb * 0.5 / (node.network_mbps / 8.0) / n_exec
        )
        overhead_s = 0.01 * float(config["shuffle_partitions"]) * sig["n_stages"] / slots
        # Caching term: storage capacity vs cached need.
        storage = (exec_mem - 300.0) * config["memory_fraction"] * config["storage_fraction"] * n_exec
        cache_miss = max(0.0, 1.0 - storage / sig["cached_mb"]) if sig["cached_mb"] > 0 else 0.0
        recompute_s = cache_miss * sig["cached_mb"] * max(sig["iterations"] - 1, 0) / node.disk_read_mbps / n_exec
        return max(cpu_s + io_s + shuffle_s + overhead_s + recompute_s + 4.0, 1e-3)


_MODELS = {"dbms": DbmsCostModel, "hadoop": HadoopCostModel, "spark": SparkCostModel}


def cost_model_for(kind: str) -> CostModel:
    try:
        return _MODELS[kind]()
    except KeyError:
        raise ValueError(f"no cost model for system kind {kind!r}") from None


@register_tuner("cost-model")
class CostModelTuner(Tuner):
    """Search the analytic model exhaustively (model evaluations are
    free), then validate the top predictions with a handful of real runs.
    """

    name = "cost-model"
    category = "cost-modeling"

    def __init__(self, n_model_samples: int = 2000, n_validate: int = 3):
        if n_validate < 1:
            raise ValueError("n_validate must be >= 1")
        self.n_model_samples = n_model_samples
        self.n_validate = n_validate

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        model = cost_model_for(session.system.kind)
        cluster = _cluster_of(session.system)
        session.evaluate(session.default_config(), tag="default")

        scored: List = []
        for _ in range(self.n_model_samples):
            config = session.space.sample_configuration(session.rng)
            predicted = model.predict(session.workload, config, cluster)
            scored.append((predicted, config))
            session.predict(config, predicted, tag="model")
        scored.sort(key=lambda item: item[0])

        best: Optional[Configuration] = None
        for predicted, config in scored[: self.n_validate]:
            measurement = session.evaluate_if_budget(config, tag="validate")
            if measurement is None:
                break
        return None  # recommend the measured best


@register_tuner("stmm")
class StmmMemoryTuner(Tuner):
    """DB2 STMM: iterative cost-benefit memory redistribution.

    Each iteration measures the workload, computes per-consumer benefit
    signals (buffer-pool misses vs. operator spills), and moves memory
    from the lower-benefit consumer to the higher-benefit one.  Only the
    DBMS exposes the memory consumers STMM manages; on other systems the
    tuner degrades to the measured default.
    """

    name = "stmm"
    category = "cost-modeling"

    def __init__(self, step_fraction: float = 1.0, max_iterations: int = 10):
        if not (0.0 < step_fraction <= 1.0):
            raise ValueError("step_fraction in (0, 1]")
        self.step_fraction = step_fraction
        self.max_iterations = max_iterations

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        if session.system.kind != "dbms":
            session.evaluate(session.default_config(), tag="default")
            return None
        cluster = _cluster_of(session.system)
        memory_mb = cluster.min_node.memory_mb
        validator = SpexValidator(session.space)

        config = session.default_config()
        measurement = session.evaluate(config, tag="stmm-0")
        best_config, best_runtime = config, measurement.runtime_s

        for step in range(1, self.max_iterations + 1):
            if not session.can_run():
                break
            metrics = measurement.metrics
            miss = 1.0 - metrics.get("buffer_hit_ratio", 0.9)
            spill = metrics.get("spill_mb", 0.0)
            sig = session.workload.signature()
            # Benefit densities: seconds saved per MB granted (coarse,
            # exactly as coarse as STMM's simulation-lite estimates).
            bp_benefit = miss * sig["scan_mb"] / max(config["buffer_pool_mb"], 64)
            wm_benefit = spill / max(config["work_mem_mb"] * sig.get("sessions", 8), 1)
            bp, wm = float(config["buffer_pool_mb"]), float(config["work_mem_mb"])
            sessions = max(sig.get("sessions", 8), 1)
            total = bp + wm * sessions
            # Transfer memory from the low-benefit consumer to the
            # high-benefit one; the total stays constant (STMM's
            # invariant) unless headroom allows growth.
            headroom = 0.6 * memory_mb - total
            if headroom > 0:
                total += headroom * 0.5
            if bp_benefit >= wm_benefit:
                delta = min(wm * sessions * 0.5, total * 0.25)
                wm -= delta / sessions
                bp = total - wm * sessions
            else:
                delta = min(bp * 0.5, total * 0.25)
                bp -= delta
                wm = (total - bp) / sessions
            values = validator.repair_values(
                {**config.to_dict(),
                 "buffer_pool_mb": session.space["buffer_pool_mb"].clip(bp),
                 "work_mem_mb": session.space["work_mem_mb"].clip(wm)}
            )
            config = session.space.configuration(values)
            result = session.evaluate_if_budget(config, tag=f"stmm-{step}")
            if result is None:
                break
            measurement = result
            if measurement.ok and measurement.runtime_s < best_runtime:
                best_config, best_runtime = config, measurement.runtime_s
        return best_config
