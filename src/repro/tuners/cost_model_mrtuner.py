"""MRTuner-style holistic MapReduce optimization (Shi et al., PVLDB'14).

MRTuner models a MapReduce job as a Producer–Transporter–Consumer (PTC)
pipeline — map tasks produce, the shuffle transports, reduce tasks
consume — and searches the *pipeline-critical* knobs analytically: the
phase that bounds throughput determines the knob to move.  Unlike
generic cost-model search, MRTuner enumerates a small structured grid
over the PTC-relevant knobs (reducers, compression, sort buffer,
slowstart, container sizes) and prunes candidates whose predicted
bottleneck phase does not improve — a few dozen model evaluations, then
validation runs.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.core.workload import Workload
from repro.systems.cluster import Cluster
from repro.tuners.cost_model import HadoopCostModel
from repro.tuners.rule_based import SpexValidator, _cluster_of

__all__ = ["MrTunerTuner", "ptc_breakdown"]


def ptc_breakdown(
    workload: Workload, config: Configuration, cluster: Cluster
) -> Dict[str, float]:
    """Predicted producer / transporter / consumer phase times.

    A decomposed view of the Hadoop cost model, used to identify the
    pipeline bottleneck.
    """
    sig = workload.signature()
    node = cluster.min_node
    n_jobs = max(sig["n_jobs"], 1.0)
    input_mb = sig["input_mb"] / n_jobs
    shuffle_mb = sig["shuffle_mb"] / n_jobs
    if config["combiner_enabled"] and sig["combiner"] > 0:
        shuffle_mb *= 1.0 - sig["combiner"]
    if config["map_output_compress"]:
        shuffle_mb *= 0.55

    n_maps = max(1.0, input_mb / float(config["dfs_block_size_mb"]))
    map_slots = sum(
        min(n.cores, int(n.memory_mb * 0.9 // config["mapreduce_map_memory_mb"]))
        for n in cluster.nodes
    )
    per_map = input_mb / n_maps
    producer = (
        math.ceil(n_maps / max(map_slots, 1))
        * (per_map / node.disk_read_mbps + per_map * sig["map_cpu"] / 1000.0)
        if map_slots
        else math.inf
    )

    net_mbps = sum(n.network_mbps for n in cluster.nodes) / 8.0
    transporter = shuffle_mb / net_mbps
    # Slowstart overlaps transport under the producer phase.
    transporter *= max(0.2, config["reduce_slowstart"])

    n_red = float(config["mapreduce_job_reduces"])
    red_slots = sum(
        min(n.cores, int(n.memory_mb * 0.9 // config["mapreduce_reduce_memory_mb"]))
        for n in cluster.nodes
    )
    per_red = shuffle_mb / n_red
    consumer = (
        math.ceil(n_red / max(red_slots, 1))
        * (per_red / node.disk_read_mbps + per_red * sig["reduce_cpu"] / 1000.0
           + per_red / node.disk_write_mbps)
        if red_slots
        else math.inf
    )
    return {"producer": producer, "transporter": transporter, "consumer": consumer}


@register_tuner("mrtuner")
class MrTunerTuner(Tuner):
    """PTC-model grid enumeration + validation for MapReduce.

    Degrades to the measured default on non-Hadoop systems (the PTC
    model is MapReduce-specific, as in the original toolkit).
    """

    name = "mrtuner"
    category = "cost-modeling"

    _REDUCERS = (1, 4, 16, 32, 64, 128)
    _SORT_MB = (64, 256, 512)
    _SLOWSTART = (0.05, 0.8)
    _CONTAINERS = (1024, 2048)

    def __init__(self, n_validate: int = 3):
        self.n_validate = n_validate

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        if session.system.kind != "hadoop":
            session.evaluate(session.default_config(), tag="default")
            return None
        cluster = _cluster_of(session.system)
        model = HadoopCostModel()
        validator = SpexValidator(session.space)
        default = session.default_config()
        session.evaluate(default, tag="default")

        scored: List[Tuple[float, Configuration]] = []
        sig = session.workload.signature()
        for reduces, sort_mb, slowstart, container, compress, combiner in itertools.product(
            self._REDUCERS, self._SORT_MB, self._SLOWSTART,
            self._CONTAINERS, (False, True), (False, True),
        ):
            if combiner and sig.get("combiner", 0.0) == 0.0:
                continue  # the job has no combiner to enable
            values = validator.repair_values({
                **default.to_dict(),
                "mapreduce_job_reduces": reduces,
                "io_sort_mb": sort_mb,
                "reduce_slowstart": slowstart,
                "mapreduce_map_memory_mb": container,
                "mapreduce_reduce_memory_mb": container,
                "map_output_compress": compress,
                "combiner_enabled": combiner,
            })
            config = session.space.configuration(values)
            phases = ptc_breakdown(session.workload, config, cluster)
            predicted = sum(phases.values())
            if not math.isfinite(predicted):
                continue
            scored.append((predicted, config))
            session.predict(config, predicted, tag="ptc")
        scored.sort(key=lambda item: item[0])
        session.extras["ptc_candidates"] = len(scored)
        if scored:
            best_phases = ptc_breakdown(session.workload, scored[0][1], cluster)
            session.extras["ptc_bottleneck"] = max(best_phases, key=best_phases.get)

        for _, config in scored[: self.n_validate]:
            if session.evaluate_if_budget(config, tag="validate") is None:
                break
        return None
