"""Experiment-driven tuners: SARD, iTuned, adaptive sampling, RRS."""

from repro.tuners.experiment.adaptive_sampling import AdaptiveSamplingTuner
from repro.tuners.experiment.gunther import GeneticTuner
from repro.tuners.experiment.ituned import ITunedTuner
from repro.tuners.experiment.rrs import RecursiveRandomSearchTuner
from repro.tuners.experiment.sard import SardRanker, SardTuner

__all__ = [
    "AdaptiveSamplingTuner",
    "GeneticTuner",
    "ITunedTuner",
    "RecursiveRandomSearchTuner",
    "SardRanker",
    "SardTuner",
]
