"""Adaptive sampling for experiment-driven management (Babu et al.,
HotOS'09).

The HotOS vision paper proposes planning experiments adaptively: run a
cheap bootstrap batch, fit a coarse surrogate, and repeatedly choose the
next experiment that balances *exploitation* (sample near the current
best) against *exploration* (sample where the surrogate is most
uncertain).  This implementation uses a random-forest surrogate whose
ensemble spread provides the uncertainty signal — no GP machinery, in
keeping with the paper's emphasis on simple, robust mechanisms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.mlkit.sampling import latin_hypercube
from repro.mlkit.tree import RandomForest
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["AdaptiveSamplingTuner"]


@register_tuner("adaptive-sampling")
class AdaptiveSamplingTuner(Tuner):
    """Bootstrap batch, then forest-guided explore/exploit sampling."""

    name = "adaptive-sampling"
    category = "experiment-driven"

    def __init__(
        self,
        n_bootstrap: int = 8,
        explore_weight: float = 1.0,
        n_candidates: int = 300,
    ):
        if n_bootstrap < 2:
            raise ValueError("n_bootstrap must be >= 2")
        self.n_bootstrap = n_bootstrap
        self.explore_weight = explore_weight
        self.n_candidates = n_candidates

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        session.evaluate(session.default_config(), tag="default")

        n_boot = min(self.n_bootstrap, max(session.remaining_runs - 2, 1))
        for i, row in enumerate(latin_hypercube(n_boot, space.dimension, rng)):
            config = space.from_array_feasible(row, rng)
            if session.evaluate_if_budget(config, tag=f"bootstrap-{i}") is None:
                return None

        step = 0
        while session.can_run():
            X, y = history_to_training_data(session)
            if len(y) < 4:
                session.evaluate(space.sample_configuration(rng), tag="fallback")
                continue
            forest = RandomForest(n_trees=25, max_depth=6, seed=int(rng.integers(1 << 30)))
            forest.fit(X, y)
            incumbent = session.best_config()
            candidates = candidate_pool(
                space, rng, n_random=self.n_candidates,
                anchors=[incumbent] if incumbent else None,
            )
            if not candidates:
                break
            Xc = np.stack([c.to_array() for c in candidates])
            mean, spread = forest.predict_std(Xc)
            # Lower predicted runtime and higher uncertainty both score;
            # the weight anneals toward exploitation as data accumulates.
            anneal = self.explore_weight / np.sqrt(1.0 + step)
            score = -mean + anneal * spread
            chosen = candidates[int(np.argmax(score))]
            session.predict(chosen, float(mean[int(np.argmax(score))]), tag="forest")
            if session.evaluate_if_budget(chosen, tag=f"adaptive-{step}") is None:
                break
            step += 1
        return None
