"""Adaptive sampling for experiment-driven management (Babu et al.,
HotOS'09).

The HotOS vision paper proposes planning experiments adaptively: run a
cheap bootstrap batch, fit a coarse surrogate, and repeatedly choose the
next experiment that balances *exploitation* (sample near the current
best) against *exploration* (sample where the surrogate is most
uncertain).  This implementation uses a random-forest surrogate whose
ensemble spread provides the uncertainty signal — no GP machinery, in
keeping with the paper's emphasis on simple, robust mechanisms.

The bootstrap design is one ask (the driver fans it out); the guided
phase proposes one experiment per ask, attaching the forest's estimate
as the candidate's prediction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.registry import register_tuner
from repro.mlkit.sampling import latin_hypercube
from repro.mlkit.tree import RandomForest
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["AdaptiveSamplingTuner"]


@register_tuner("adaptive-sampling")
class AdaptiveSamplingTuner(SearchTuner):
    """Bootstrap batch, then forest-guided explore/exploit sampling."""

    name = "adaptive-sampling"
    category = "experiment-driven"

    def __init__(
        self,
        n_bootstrap: int = 8,
        explore_weight: float = 1.0,
        n_candidates: int = 300,
    ):
        if n_bootstrap < 2:
            raise ValueError("n_bootstrap must be >= 2")
        self.n_bootstrap = n_bootstrap
        self.explore_weight = explore_weight
        self.n_candidates = n_candidates

    def setup(self, state: SearchState) -> None:
        self._boot_asked = False
        self._step = 0

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        if not self._boot_asked:
            self._boot_asked = True
            n_boot = min(self.n_bootstrap, max(state.remaining_runs - 2, 1))
            return [
                Candidate(space.from_array_feasible(row, rng), tag=f"bootstrap-{i}")
                for i, row in enumerate(latin_hypercube(n_boot, space.dimension, rng))
            ]
        X, y = history_to_training_data(state)
        if len(y) < 4:
            return [Candidate(space.sample_configuration(rng), tag="fallback")]
        forest = RandomForest(n_trees=25, max_depth=6, seed=int(rng.integers(1 << 30)))
        forest.fit(X, y)
        incumbent = state.best_config()
        candidates = candidate_pool(
            space, rng, n_random=self.n_candidates,
            anchors=[incumbent] if incumbent else None,
        )
        if not candidates:
            return []
        Xc = np.stack([c.to_array() for c in candidates])
        mean, spread = forest.predict_std(Xc)
        # Lower predicted runtime and higher uncertainty both score;
        # the weight anneals toward exploitation as data accumulates.
        anneal = self.explore_weight / np.sqrt(1.0 + self._step)
        score = -mean + anneal * spread
        best = int(np.argmax(score))
        step = self._step
        self._step += 1
        return [
            Candidate(
                candidates[best],
                tag=f"adaptive-{step}",
                predicted_runtime_s=float(mean[best]),
                predict_tag="forest",
            )
        ]
