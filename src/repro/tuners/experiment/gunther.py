"""Gunther-style genetic-algorithm tuning (Liao et al., HPDC'13).

One of the "over 40 highly-cited approaches" the tutorial counts for
Hadoop: a genetic algorithm over the knob space with real executions as
the fitness function.  Population members are unit-space vectors;
selection is tournament, crossover is uniform, mutation is Gaussian.
Works unchanged on any of the three systems.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.tuners.common import penalized_runtime

__all__ = ["GeneticTuner"]


@register_tuner("genetic")
class GeneticTuner(Tuner):
    """GA over unit-encoded configurations with measured fitness."""

    name = "genetic"
    category = "experiment-driven"

    def __init__(
        self,
        population: int = 8,
        elite: int = 2,
        mutation_scale: float = 0.12,
        mutation_rate: float = 0.3,
        tournament: int = 3,
    ):
        if population < 4:
            raise ValueError("population must be >= 4")
        if not (0 < elite < population):
            raise ValueError("elite must be in (0, population)")
        self.population = population
        self.elite = elite
        self.mutation_scale = mutation_scale
        self.mutation_rate = mutation_rate
        self.tournament = tournament

    def _fitness(
        self, session: TuningSession, config: Configuration, tag: str
    ) -> Optional[float]:
        measurement = session.evaluate_if_budget(config, tag=tag)
        if measurement is None:
            return None
        return penalized_runtime(measurement, session.history)

    def _select(
        self, rng: np.random.Generator, scored: List[Tuple[float, np.ndarray]]
    ) -> np.ndarray:
        """Tournament selection: best of a random subset."""
        picks = rng.choice(len(scored), size=min(self.tournament, len(scored)), replace=False)
        best = min(picks, key=lambda i: scored[i][0])
        return scored[best][1]

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        d = space.dimension

        # Generation 0: the default plus random individuals.
        scored: List[Tuple[float, np.ndarray]] = []
        default = session.default_config()
        y = self._fitness(session, default, "gen0-default")
        if y is None:
            return None
        scored.append((y, default.to_array()))
        for i in range(self.population - 1):
            config = space.sample_configuration(rng)
            y = self._fitness(session, config, f"gen0-{i}")
            if y is None:
                return None
            scored.append((y, config.to_array()))

        generation = 1
        while session.can_run():
            scored.sort(key=lambda item: item[0])
            next_pop: List[np.ndarray] = [x for _, x in scored[: self.elite]]
            while len(next_pop) < self.population:
                mother = self._select(rng, scored)
                father = self._select(rng, scored)
                mask = rng.random(d) < 0.5
                child = np.where(mask, mother, father)
                mutate = rng.random(d) < self.mutation_rate
                child = np.where(
                    mutate,
                    np.clip(child + rng.normal(scale=self.mutation_scale, size=d), 0, 1),
                    child,
                )
                next_pop.append(child)

            new_scored: List[Tuple[float, np.ndarray]] = list(scored[: self.elite])
            for i, x in enumerate(next_pop[self.elite:]):
                config = space.from_array_feasible(x, rng)
                y = self._fitness(session, config, f"gen{generation}-{i}")
                if y is None:
                    session.extras["generations"] = generation
                    return None
                new_scored.append((y, config.to_array()))
            scored = new_scored
            generation += 1
        session.extras["generations"] = generation
        return None
