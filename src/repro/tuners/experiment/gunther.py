"""Gunther-style genetic-algorithm tuning (Liao et al., HPDC'13).

One of the "over 40 highly-cited approaches" the tutorial counts for
Hadoop: a genetic algorithm over the knob space with real executions as
the fitness function.  Population members are unit-space vectors;
selection is tournament, crossover is uniform, mutation is Gaussian.
Works unchanged on any of the three systems.

As an ask/tell strategy, each generation is one proposal batch — the
driver evaluates whole generations in parallel, which is the natural
concurrency of a GA.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.measurement import Observation
from repro.core.registry import register_tuner
from repro.tuners.common import ResponseReplay

__all__ = ["GeneticTuner"]


@register_tuner("genetic")
class GeneticTuner(SearchTuner):
    """GA over unit-encoded configurations with measured fitness."""

    name = "genetic"
    category = "experiment-driven"
    default_tag = "gen0-default"

    def __init__(
        self,
        population: int = 8,
        elite: int = 2,
        mutation_scale: float = 0.12,
        mutation_rate: float = 0.3,
        tournament: int = 3,
    ):
        if population < 4:
            raise ValueError("population must be >= 4")
        if not (0 < elite < population):
            raise ValueError("elite must be in (0, population)")
        self.population = population
        self.elite = elite
        self.mutation_scale = mutation_scale
        self.mutation_rate = mutation_rate
        self.tournament = tournament

    def setup(self, state: SearchState) -> None:
        # Penalize (not the session policy): GA fitness must be total —
        # a discarded individual would have no rank in its generation.
        self._replay = ResponseReplay("penalize")
        self._scored: List[Tuple[float, np.ndarray]] = []
        self._pending_elite: List[Tuple[float, np.ndarray]] = []
        self._generation = 0
        self._gen0_asked = False

    def _select(
        self, rng: np.random.Generator, scored: List[Tuple[float, np.ndarray]]
    ) -> np.ndarray:
        """Tournament selection: best of a random subset."""
        picks = rng.choice(len(scored), size=min(self.tournament, len(scored)), replace=False)
        best = min(picks, key=lambda i: scored[i][0])
        return scored[best][1]

    def tell(self, state: SearchState, results: List[Observation]) -> None:
        scored = [
            (self._replay.account(o), o.config.to_array()) for o in results
        ]
        if self._generation == 0:
            # Generation 0 accumulates the default plus the random
            # individuals; it is complete once the population is full.
            # Under multi-fidelity screening only the promoted
            # survivors come back — commit whatever did, once the
            # generation-0 ask has been told.
            self._scored.extend(scored)
            if len(self._scored) == self.population or (
                self.multi_fidelity and self._gen0_asked and self._scored
            ):
                self._generation = 1
            return
        if len(scored) == self.population - self.elite or (
            self.multi_fidelity and scored
        ):
            # A full generation came back: commit elites + children.
            # Partial generations (budget died mid-batch) are not
            # committed, matching the serial loop's early return —
            # except under screening, where partial-by-design survivor
            # sets are the only thing a generation ever returns.
            self._scored = self._pending_elite + scored
            self._generation += 1

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        if self._generation == 0:
            if self._gen0_asked:
                return []
            self._gen0_asked = True
            return [
                Candidate(space.sample_configuration(rng), tag=f"gen0-{i}")
                for i in range(self.population - 1)
            ]
        d = space.dimension
        scored = sorted(self._scored, key=lambda item: item[0])
        self._pending_elite = list(scored[: self.elite])
        next_pop: List[np.ndarray] = [x for _, x in scored[: self.elite]]
        while len(next_pop) < self.population:
            mother = self._select(rng, scored)
            father = self._select(rng, scored)
            mask = rng.random(d) < 0.5
            child = np.where(mask, mother, father)
            mutate = rng.random(d) < self.mutation_rate
            child = np.where(
                mutate,
                np.clip(child + rng.normal(scale=self.mutation_scale, size=d), 0, 1),
                child,
            )
            next_pop.append(child)
        return [
            Candidate(
                space.from_array_feasible(x, rng),
                tag=f"gen{self._generation}-{i}",
            )
            for i, x in enumerate(next_pop[self.elite:])
        ]

    def finish(self, state: SearchState) -> None:
        if self._generation >= 1:
            state.extras["generations"] = self._generation
