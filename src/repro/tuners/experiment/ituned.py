"""iTuned: LHS initialization + Gaussian process + expected improvement.

Duan, Thummala & Babu (PVLDB'09).  The planning loop:

1. *Initialization*: a maximin Latin hypercube of ``n_init`` experiments
   covers the space.
2. *Sequential sampling*: fit a GP to all (config, runtime) pairs; pick
   the candidate maximizing expected improvement; run it; repeat.
3. Failed runs enter the model at a penalty so EI avoids the region —
   iTuned's practical answer to crashing configurations.

The ``shrink_after`` option reproduces iTuned's space-shrinking trick:
once enough data exists, sampling concentrates around the incumbent.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.mlkit.acquisition import expected_improvement
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.kernels import Matern52
from repro.mlkit.sampling import maximin_latin_hypercube
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["ITunedTuner"]


@register_tuner("ituned")
class ITunedTuner(Tuner):
    """LHS + GP + EI experiment-driven tuning."""

    name = "ituned"
    category = "experiment-driven"

    def __init__(
        self,
        n_init: int = 10,
        n_candidates: int = 400,
        xi: float = 0.0,
        shrink_after: int = 20,
    ):
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.xi = xi
        self.shrink_after = shrink_after

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        session.evaluate(session.default_config(), tag="default")

        # Phase 1: space-filling initialization.
        n_init = min(self.n_init, max(session.remaining_runs - 2, 1))
        design = maximin_latin_hypercube(n_init, space.dimension, rng)
        for i, row in enumerate(design):
            config = space.from_array_feasible(row, rng)
            if session.evaluate_if_budget(config, tag=f"lhs-{i}") is None:
                return None

        # Phase 2: adaptive sampling with EI.
        step = 0
        while session.can_run():
            X, y = history_to_training_data(session)
            if len(y) < 3:
                config = space.sample_configuration(rng)
                session.evaluate(config, tag="fallback")
                continue
            # Runtimes (and failure penalties) span decades; the GP is
            # far better behaved on log targets, and EI in log space
            # optimizes relative improvement.
            gp = GaussianProcess(kernel=Matern52(), optimize=True).fit(X, np.log(y))
            best = float(np.log(session.best_runtime()))
            anchors: List[Configuration] = []
            if self.shrink_after and len(y) >= self.shrink_after:
                incumbent = session.best_config()
                if incumbent is not None:
                    anchors.append(incumbent)
            candidates = candidate_pool(
                space, rng, n_random=self.n_candidates, anchors=anchors
            )
            if not candidates:
                break
            Xc = np.stack([c.to_array() for c in candidates])
            mean, std = gp.predict(Xc, return_std=True)
            ei = expected_improvement(mean, std, best, xi=self.xi)
            chosen = candidates[int(np.argmax(ei))]
            session.predict(
                chosen, float(np.exp(mean[int(np.argmax(ei))])), tag="gp-mean"
            )
            if session.evaluate_if_budget(chosen, tag=f"ei-{step}") is None:
                break
            step += 1
        return None
