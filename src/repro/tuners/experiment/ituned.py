"""iTuned: LHS initialization + Gaussian process + expected improvement.

Duan, Thummala & Babu (PVLDB'09).  The planning loop:

1. *Initialization*: a maximin Latin hypercube of ``n_init`` experiments
   covers the space.
2. *Sequential sampling*: fit a GP to all (config, runtime) pairs; pick
   the candidate maximizing expected improvement; run it; repeat.
3. Failed runs enter the model at a penalty so EI avoids the region —
   iTuned's practical answer to crashing configurations.

The ``shrink_after`` option reproduces iTuned's space-shrinking trick:
once enough data exists, sampling concentrates around the incumbent.

``batch_size > 1`` reproduces iTuned's *parallel experiments* feature
(§5 of the paper): the LHS design and each EI proposal round commit to
a batch of configurations up front — the strategy declares its batches
*atomic*, so the driver charges them whole even under a wall-clock cap
and fans them out through the session's runner.  The default of 1 is
the classic sequential loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.exec.resilience import FAILURE_POLICIES
from repro.mlkit.acquisition import expected_improvement
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.kernels import Matern52
from repro.mlkit.sampling import maximin_latin_hypercube
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["ITunedTuner"]


@register_tuner("ituned")
class ITunedTuner(SearchTuner):
    """LHS + GP + EI experiment-driven tuning."""

    name = "ituned"
    category = "experiment-driven"

    def __init__(
        self,
        n_init: int = 10,
        n_candidates: int = 400,
        xi: float = 0.0,
        shrink_after: int = 20,
        batch_size: int = 1,
        failure_policy: Optional[str] = None,
        warm_start: bool = False,
    ):
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}"
            )
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.xi = xi
        self.shrink_after = shrink_after
        self.batch_size = batch_size
        #: How failed runs enter the GP (penalize is iTuned's published
        #: answer; discard/impute are the chaos-benchmark alternatives).
        self.failure_policy = failure_policy
        #: Consume a transfer prior: seed with its best configs, shrink
        #: the LHS design, and stack its rows into the GP's data.
        self.warm_start = warm_start

    @property
    def atomic_batches(self) -> bool:
        # iTuned §5: a parallel proposal round is committed before any
        # of its results are seen, wall-clock cap or not.
        return self.batch_size > 1

    def wants_prior_seeds(self, state: SearchState) -> int:
        return 3 if self.warm_start else 0

    def setup(self, state: SearchState) -> None:
        self._init_configs: Optional[List[Configuration]] = None
        self._init_pos = 0
        self._step = 0

    def _plan_init(self, state: SearchState) -> None:
        """Build the space-filling design.  A transfer prior already
        covers the space with mapped pseudo-samples, so warm starts
        shrink the design to a small residual."""
        space, rng = state.space, state.rng
        n_init = self.n_init - 2 * state.seeded_prior_runs
        if state.prior is not None and len(state.prior) >= 3:
            n_init = min(n_init, 2)
        n_init = min(max(n_init, 2), max(state.remaining_runs - 2, 1))
        design = maximin_latin_hypercube(n_init, space.dimension, rng)
        self._init_configs = [
            space.from_array_feasible(row, rng) for row in design
        ]

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        if self._init_configs is None:
            self._plan_init(state)
        # Phase 1: the DoE rows are independent by construction, so
        # batching is where parallel experiment execution pays off
        # first.
        if self._init_pos < len(self._init_configs):
            start = self._init_pos
            width = self.batch_size if self.batch_size > 1 else 1
            chunk = self._init_configs[start:start + width]
            self._init_pos += len(chunk)
            return [
                Candidate(c, tag=f"lhs-{start + j}")
                for j, c in enumerate(chunk)
            ]
        # Phase 2: adaptive sampling with EI.
        use_prior = state.prior is not None and len(state.prior) > 0
        X, y = history_to_training_data(state, include_prior=use_prior)
        if len(y) < 3:
            return [Candidate(space.sample_configuration(rng), tag="fallback")]
        # Runtimes (and failure penalties) span decades; the GP is
        # far better behaved on log targets, and EI in log space
        # optimizes relative improvement.
        gp = GaussianProcess(kernel=Matern52(), optimize=True).fit(X, np.log(y))
        best = float(np.log(state.best_runtime()))
        anchors: List[Configuration] = []
        if self.shrink_after and len(y) >= self.shrink_after:
            incumbent = state.best_config()
            if incumbent is not None:
                anchors.append(incumbent)
        candidates = candidate_pool(
            space, rng, n_random=self.n_candidates, anchors=anchors
        )
        if not candidates:
            return []
        Xc = np.stack([c.to_array() for c in candidates])
        mean, std = gp.predict(Xc, return_std=True)
        ei = expected_improvement(mean, std, best, xi=self.xi)
        step = self._step
        self._step += 1
        if self.batch_size > 1:
            # Parallel iTuned: commit to the top-EI *distinct*
            # candidates as one atomic batch per model fit.
            order = np.argsort(-ei)
            batch: List[Candidate] = []
            seen = set()
            for j in order:
                config = candidates[int(j)]
                if config in seen:
                    continue
                seen.add(config)
                batch.append(
                    Candidate(
                        config,
                        tag=f"ei-{step}.{len(batch)}",
                        predicted_runtime_s=float(np.exp(mean[int(j)])),
                        predict_tag="gp-mean",
                    )
                )
                if len(batch) >= self.batch_size:
                    break
            return batch
        idx = int(np.argmax(ei))
        return [
            Candidate(
                candidates[idx],
                tag=f"ei-{step}",
                predicted_runtime_s=float(np.exp(mean[idx])),
                predict_tag="gp-mean",
            )
        ]
