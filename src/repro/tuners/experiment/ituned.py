"""iTuned: LHS initialization + Gaussian process + expected improvement.

Duan, Thummala & Babu (PVLDB'09).  The planning loop:

1. *Initialization*: a maximin Latin hypercube of ``n_init`` experiments
   covers the space.
2. *Sequential sampling*: fit a GP to all (config, runtime) pairs; pick
   the candidate maximizing expected improvement; run it; repeat.
3. Failed runs enter the model at a penalty so EI avoids the region —
   iTuned's practical answer to crashing configurations.

The ``shrink_after`` option reproduces iTuned's space-shrinking trick:
once enough data exists, sampling concentrates around the incumbent.

``batch_size > 1`` reproduces iTuned's *parallel experiments* feature
(§5 of the paper): the LHS design and each EI proposal round commit to
a batch of configurations up front, charged atomically through
:meth:`~repro.core.session.TuningSession.evaluate_batch` — which an
:class:`~repro.core.system.InstrumentedSystem` with a runner executes
concurrently.  The default of 1 is the classic sequential loop.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.exceptions import BudgetExhausted
from repro.exec.resilience import FAILURE_POLICIES
from repro.mlkit.acquisition import expected_improvement
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.kernels import Matern52
from repro.mlkit.sampling import maximin_latin_hypercube
from repro.tuners.common import (
    candidate_pool,
    evaluate_prior_seeds,
    history_to_training_data,
)

__all__ = ["ITunedTuner"]


@register_tuner("ituned")
class ITunedTuner(Tuner):
    """LHS + GP + EI experiment-driven tuning."""

    name = "ituned"
    category = "experiment-driven"

    def __init__(
        self,
        n_init: int = 10,
        n_candidates: int = 400,
        xi: float = 0.0,
        shrink_after: int = 20,
        batch_size: int = 1,
        failure_policy: Optional[str] = None,
        warm_start: bool = False,
    ):
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}"
            )
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.xi = xi
        self.shrink_after = shrink_after
        self.batch_size = batch_size
        #: How failed runs enter the GP (penalize is iTuned's published
        #: answer; discard/impute are the chaos-benchmark alternatives).
        self.failure_policy = failure_policy
        #: Consume a transfer prior: seed with its best configs, shrink
        #: the LHS design, and stack its rows into the GP's data.
        self.warm_start = warm_start

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        session.evaluate(session.default_config(), tag="default")
        seeded = evaluate_prior_seeds(session, k=3)

        # Phase 1: space-filling initialization.  With batching, the
        # design executes in atomic chunks of ``batch_size`` — the DoE
        # rows are independent by construction, so this is where
        # parallel experiment execution pays off first.  A transfer
        # prior already covers the space with mapped pseudo-samples, so
        # warm starts shrink the design to a small residual.
        n_init = self.n_init - 2 * seeded
        if session.prior is not None and len(session.prior) >= 3:
            n_init = min(n_init, 2)
        n_init = min(max(n_init, 2), max(session.remaining_runs - 2, 1))
        design = maximin_latin_hypercube(n_init, space.dimension, rng)
        init_configs = [space.from_array_feasible(row, rng) for row in design]
        if self.batch_size > 1:
            for start in range(0, len(init_configs), self.batch_size):
                chunk = init_configs[start:start + self.batch_size]
                try:
                    session.evaluate_batch(
                        chunk,
                        tags=[f"lhs-{start + j}" for j in range(len(chunk))],
                    )
                except BudgetExhausted:
                    return None
        else:
            for i, config in enumerate(init_configs):
                if session.evaluate_if_budget(config, tag=f"lhs-{i}") is None:
                    return None

        # Phase 2: adaptive sampling with EI.
        use_prior = session.prior is not None and len(session.prior) > 0
        step = 0
        while session.can_run():
            X, y = history_to_training_data(session, include_prior=use_prior)
            if len(y) < 3:
                config = space.sample_configuration(rng)
                session.evaluate(config, tag="fallback")
                continue
            # Runtimes (and failure penalties) span decades; the GP is
            # far better behaved on log targets, and EI in log space
            # optimizes relative improvement.
            gp = GaussianProcess(kernel=Matern52(), optimize=True).fit(X, np.log(y))
            best = float(np.log(session.best_runtime()))
            anchors: List[Configuration] = []
            if self.shrink_after and len(y) >= self.shrink_after:
                incumbent = session.best_config()
                if incumbent is not None:
                    anchors.append(incumbent)
            candidates = candidate_pool(
                space, rng, n_random=self.n_candidates, anchors=anchors
            )
            if not candidates:
                break
            Xc = np.stack([c.to_array() for c in candidates])
            mean, std = gp.predict(Xc, return_std=True)
            ei = expected_improvement(mean, std, best, xi=self.xi)
            if self.batch_size > 1:
                # Parallel iTuned: commit to the top-EI *distinct*
                # candidates as one atomic batch per model fit.
                order = np.argsort(-ei)
                chosen_batch: List[Configuration] = []
                seen = set()
                for j in order:
                    config = candidates[int(j)]
                    if config in seen:
                        continue
                    seen.add(config)
                    session.predict(
                        config, float(np.exp(mean[int(j)])), tag="gp-mean"
                    )
                    chosen_batch.append(config)
                    if len(chosen_batch) >= self.batch_size:
                        break
                try:
                    session.evaluate_batch(
                        chosen_batch,
                        tags=[
                            f"ei-{step}.{j}" for j in range(len(chosen_batch))
                        ],
                    )
                except BudgetExhausted:
                    break
                step += 1
                continue
            chosen = candidates[int(np.argmax(ei))]
            session.predict(
                chosen, float(np.exp(mean[int(np.argmax(ei))])), tag="gp-mean"
            )
            if session.evaluate_if_budget(chosen, tag=f"ei-{step}") is None:
                break
            step += 1
        return None
