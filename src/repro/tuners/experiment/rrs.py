"""Recursive random search (RRS).

A classic black-box algorithm used by several Hadoop tuners (e.g.,
Gunther-style searchers): alternate global random sampling with
recursive shrink-and-resample around the best point, restarting the
local phase when it stops paying off.

The global bursts are independent uniform samples, so each burst is a
single ask the driver can fan out; the local phase is inherently
sequential (every sample recenters on the incumbent) and proposes one
candidate at a time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.measurement import Observation
from repro.core.registry import register_tuner
from repro.tuners.common import ResponseReplay

__all__ = ["RecursiveRandomSearchTuner"]


@register_tuner("rrs")
class RecursiveRandomSearchTuner(SearchTuner):
    """Global/local recursive random search."""

    name = "rrs"
    category = "experiment-driven"

    def __init__(
        self,
        n_global: int = 6,
        shrink: float = 0.5,
        local_fail_limit: int = 3,
        min_radius: float = 0.02,
    ):
        if not (0.0 < shrink < 1.0):
            raise ValueError("shrink must be in (0, 1)")
        self.n_global = n_global
        self.shrink = shrink
        self.local_fail_limit = local_fail_limit
        self.min_radius = min_radius

    def setup(self, state: SearchState) -> None:
        # Penalize (not the session policy): every sample must yield a
        # finite score for the incumbent comparison to stay total.
        self._replay = ResponseReplay("penalize")
        self._best_y = float("inf")
        self._best_x: Optional[np.ndarray] = None
        self._phase = "default"  # what the last proposal was
        self._radius = 0.0
        self._failures = 0

    def tell(self, state: SearchState, results: List[Observation]) -> None:
        for obs in results:
            y = self._replay.account(obs)
            x = obs.config.to_array()
            if self._phase in ("default", "global"):
                if y < self._best_y:
                    self._best_y, self._best_x = y, x
                continue
            # Local phase: track the incumbent and the failure streak
            # that drives the shrink schedule.
            if y < self._best_y:
                self._best_y, self._best_x = y, x
                self._failures = 0
            else:
                self._failures += 1
                if self._failures >= self.local_fail_limit:
                    self._radius *= self.shrink
                    self._failures = 0

    def _global_burst(self, state: SearchState) -> Sequence[Candidate]:
        self._phase = "global"
        return [
            Candidate(state.space.sample_configuration(state.rng), tag=f"global-{i}")
            for i in range(self.n_global)
        ]

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        if self._phase == "default":
            return self._global_burst(state)
        if self._phase == "global":
            # Global burst digested: recurse locally around the best.
            self._radius = 0.25
            self._failures = 0
            self._phase = "local"
        if self._radius <= self.min_radius:
            # Local phase exhausted; restart with a fresh global burst.
            return self._global_burst(state)
        space, rng = state.space, state.rng
        x = np.clip(
            self._best_x + rng.uniform(-self._radius, self._radius, size=space.dimension),
            0.0,
            1.0,
        )
        config = space.from_array_feasible(x, rng)
        return [Candidate(config, tag=f"local-r{self._radius:.2f}")]
