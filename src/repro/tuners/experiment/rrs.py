"""Recursive random search (RRS).

A classic black-box algorithm used by several Hadoop tuners (e.g.,
Gunther-style searchers): alternate global random sampling with
recursive shrink-and-resample around the best point, restarting the
local phase when it stops paying off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.tuners.common import penalized_runtime

__all__ = ["RecursiveRandomSearchTuner"]


@register_tuner("rrs")
class RecursiveRandomSearchTuner(Tuner):
    """Global/local recursive random search."""

    name = "rrs"
    category = "experiment-driven"

    def __init__(
        self,
        n_global: int = 6,
        shrink: float = 0.5,
        local_fail_limit: int = 3,
        min_radius: float = 0.02,
    ):
        if not (0.0 < shrink < 1.0):
            raise ValueError("shrink must be in (0, 1)")
        self.n_global = n_global
        self.shrink = shrink
        self.local_fail_limit = local_fail_limit
        self.min_radius = min_radius

    def _run(self, session: TuningSession, config: Configuration, tag: str) -> Optional[float]:
        measurement = session.evaluate_if_budget(config, tag=tag)
        if measurement is None:
            return None
        return penalized_runtime(measurement, session.history)

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        default = session.default_config()
        best_y = self._run(session, default, "default")
        if best_y is None:
            return None
        best_x = default.to_array()

        while session.can_run():
            # Global phase: a burst of uniform samples.
            improved_globally = False
            for i in range(self.n_global):
                config = space.sample_configuration(rng)
                y = self._run(session, config, f"global-{i}")
                if y is None:
                    return None
                if y < best_y:
                    best_y, best_x = y, config.to_array()
                    improved_globally = True

            # Local phase: shrink a box around the incumbent.
            radius = 0.25
            failures = 0
            while radius > self.min_radius and session.can_run():
                x = np.clip(
                    best_x + rng.uniform(-radius, radius, size=space.dimension),
                    0.0,
                    1.0,
                )
                config = space.from_array_feasible(x, rng)
                y = self._run(session, config, f"local-r{radius:.2f}")
                if y is None:
                    return None
                if y < best_y:
                    best_y, best_x = y, config.to_array()
                    failures = 0
                else:
                    failures += 1
                    if failures >= self.local_fail_limit:
                        radius *= self.shrink
                        failures = 0
            if not improved_globally and not session.can_run():
                break
        return None
