"""SARD: Statistical Approach for Ranking Database tuning parameters.

Debnath et al. (ICDE'08): screen all knobs with a Plackett–Burman
two-level design (plus foldover to cancel even-order confounding), rank
them by main-effect magnitude, and focus subsequent tuning on the top
few.  :class:`SardRanker` exposes the ranking as a standalone,
session-driven utility; :class:`SardTuner` is the ask/tell strategy
adding the natural follow-up — a small grid over the top-ranked knobs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.measurement import Observation
from repro.core.parameters import Configuration, ConfigurationSpace
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.exceptions import BudgetExhausted
from repro.exec.resilience import FAILURE_POLICIES
from repro.mlkit.doe import foldover, main_effects, plackett_burman
from repro.mlkit.linear import lasso_rank_features
from repro.tuners.common import ResponseReplay

__all__ = ["SardRanker", "SardTuner"]

_LOW_UNIT, _HIGH_UNIT = 0.2, 0.8


class SardRanker:
    """Plackett–Burman screening of a configuration space.

    The design assigns each knob its low/high level (unit coordinates
    0.15/0.85) per run; after measuring all runs, the absolute main
    effect of each knob estimates its importance.
    """

    def __init__(self, use_foldover: bool = True):
        self.use_foldover = use_foldover

    def design_for(self, space: ConfigurationSpace) -> np.ndarray:
        design = plackett_burman(space.dimension)
        if self.use_foldover:
            design = foldover(design)
        return design

    def configs_for(
        self, space: ConfigurationSpace, rng: np.random.Generator
    ) -> Tuple[np.ndarray, List[Configuration]]:
        design = self.design_for(space)
        unit = np.where(design > 0, _HIGH_UNIT, _LOW_UNIT)
        configs = [space.from_array_feasible(row, rng) for row in unit]
        return design, configs

    def rank(
        self,
        session: TuningSession,
        max_runs: Optional[int] = None,
        batch_size: int = 1,
    ) -> List[Tuple[str, float]]:
        """Execute the design on budget and return (knob, |effect|)
        sorted descending.  Rows that do not fit the budget are dropped
        symmetrically (design rows are exchangeable).

        A two-level screening design is the canonical parallel DoE: all
        rows are decided before any response is seen, so with
        ``batch_size > 1`` the rows execute as atomic batches through
        :meth:`~repro.core.session.TuningSession.evaluate_batch`.

        Failed rows follow the session's failure policy: ``penalize``
        (large finite response), ``impute`` (median of successes so
        far), or ``discard`` (row dropped from the effect estimate —
        design rows are exchangeable, so the estimate stays unbiased).
        Hung rows (successful, infinite runtime) count as failures."""
        space = session.space
        policy = getattr(session, "failure_policy", "penalize")
        design, configs = self.configs_for(space, session.rng)
        limit = len(configs)
        if max_runs is not None:
            limit = min(limit, max_runs)
        responses: List[float] = []
        used_rows: List[int] = []
        # Failure responses reference the successes seen *before* the
        # failing row; replaying that bookkeeping incrementally makes a
        # batched screen rank identically to a sequential one (a batch's
        # later successes must not lower an earlier row's penalty).
        replay = ResponseReplay(policy)
        for o in session.history.successful():
            if np.isfinite(o.runtime_s):
                replay.account(o)

        def account(row: int, measurement) -> None:
            response = replay.account(_Settled(measurement))
            if response is not None:
                responses.append(response)
                used_rows.append(row)

        if batch_size > 1:
            for start in range(0, limit, batch_size):
                chunk = configs[start:min(start + batch_size, limit)]
                try:
                    measurements = session.evaluate_batch(
                        chunk,
                        tags=[f"pb-{start + j}" for j in range(len(chunk))],
                    )
                except BudgetExhausted:
                    break
                for j, measurement in enumerate(measurements):
                    account(start + j, measurement)
        else:
            for i in range(limit):
                measurement = session.evaluate_if_budget(configs[i], tag=f"pb-{i}")
                if measurement is None:
                    break
                account(i, measurement)
        if len(used_rows) < 4:
            return [(name, 0.0) for name in space.names()]
        effects = main_effects(design[used_rows], np.array(responses))
        ranked = sorted(
            zip(space.names(), np.abs(effects)), key=lambda kv: -kv[1]
        )
        return ranked


class _Settled:
    """Adapter giving a bare Measurement the Observation shape
    :class:`~repro.tuners.common.ResponseReplay` accounts."""

    def __init__(self, measurement):
        self.measurement = measurement


@register_tuner("sard")
class SardTuner(SearchTuner):
    """PB screening, then a grid over the top-ranked knobs."""

    name = "sard"
    category = "experiment-driven"

    def __init__(
        self,
        top_k: int = 3,
        levels: int = 3,
        use_foldover: bool = True,
        batch_size: int = 1,
        failure_policy: Optional[str] = None,
        warm_start: bool = False,
    ):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}"
            )
        self.top_k = top_k
        self.levels = levels
        self.batch_size = batch_size
        #: How failed screening rows enter the effect estimate (opt-in;
        #: flows into the tuning session — see ``Tuner.failure_policy``).
        self.failure_policy = failure_policy
        #: Rank knobs from transfer-prior data instead of running the
        #: PB screen — the screen is most of SARD's experiment cost, so
        #: a usable prior converts almost the whole budget into grid
        #: refinement over the knobs that mattered on similar workloads.
        self.warm_start = warm_start
        self.ranker = SardRanker(use_foldover=use_foldover)

    @property
    def atomic_batches(self) -> bool:
        return self.batch_size > 1

    def _prior_ranking(
        self, state: SearchState
    ) -> Optional[List[Tuple[str, float]]]:
        """Knob importances from the prior's (X, y), via the lasso path
        (OtterTune's criterion).  None when the prior is too small to
        rank ``space.dimension`` features credibly."""
        X, y = state.prior_training_data()
        if len(y) < max(8, state.space.dimension // 3):
            return None
        order = lasso_rank_features(X, np.log(np.maximum(y, 1e-9)))
        names = state.space.names()
        d = len(order)
        return [(names[j], float(d - pos)) for pos, j in enumerate(order)]

    def wants_prior_seeds(self, state: SearchState) -> int:
        if not self.warm_start:
            return 0
        self._prior_ranked = self._prior_ranking(state)
        if self._prior_ranked is None:
            return 0
        state.extras["sard_ranking_source"] = "transfer-prior"
        return 2

    def setup(self, state: SearchState) -> None:
        self._replay = ResponseReplay(state.failure_policy)
        self._prior_ranked: Optional[List[Tuple[str, float]]] = None
        self._design: Optional[np.ndarray] = None
        self._configs: List[Configuration] = []
        self._limit = 0
        self._pos = 0
        self._pending_rows: List[int] = []
        self._responses: List[float] = []
        self._used_rows: List[int] = []
        self._ranked: Optional[List[Tuple[str, float]]] = None
        self._grid: Optional[List[Configuration]] = None
        self._grid_pos = 0
        self._screen_telling = False

    def tell(self, state: SearchState, results: List[Observation]) -> None:
        if not self._screen_telling:
            # Default / prior-seed / grid results still feed the success
            # pool that failure responses are computed against.
            for o in results:
                self._replay.account(o)
            return
        for row, o in zip(self._pending_rows, results):
            response = self._replay.account(o)
            if response is not None:
                self._responses.append(response)
                self._used_rows.append(row)

    def _finish_ranking(self, state: SearchState) -> None:
        if self._prior_ranked is not None:
            ranked = self._prior_ranked
        elif len(self._used_rows) < 4:
            ranked = [(name, 0.0) for name in state.space.names()]
        else:
            effects = main_effects(
                self._design[self._used_rows], np.array(self._responses)
            )
            ranked = sorted(
                zip(state.space.names(), np.abs(effects)),
                key=lambda kv: -kv[1],
            )
        self._ranked = ranked
        state.extras["sard_ranking"] = ranked

    def _build_grid(self, state: SearchState) -> List[Configuration]:
        space = state.space
        top = [name for name, _ in self._ranked[: self.top_k]]
        grids = {n: space[n].grid(self.levels) for n in top}
        configs: List[Configuration] = []

        def recurse(idx: int, overrides: dict) -> None:
            if idx == len(top):
                try:
                    configs.append(space.partial(overrides))
                except Exception:
                    pass
                return
            for value in grids[top[idx]]:
                overrides[top[idx]] = value
                recurse(idx + 1, overrides)
            del overrides[top[idx]]

        recurse(0, {})
        return configs

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        if self._ranked is None and self._prior_ranked is not None:
            self._finish_ranking(state)
        if self._ranked is None:
            if self._design is None:
                self._design, self._configs = self.ranker.configs_for(
                    state.space, state.rng
                )
                # Spend at most ~60% of the budget on screening, the
                # rest on the focused grid.
                screen_budget = max(4, int(state.budget.max_runs * 0.6))
                self._limit = min(len(self._configs), screen_budget)
            if self._pos < self._limit:
                start = self._pos
                width = self.batch_size if self.batch_size > 1 else 1
                end = min(start + width, self._limit)
                chunk = self._configs[start:end]
                self._pending_rows = list(range(start, end))
                self._pos = end
                self._screen_telling = True
                return [
                    Candidate(c, tag=f"pb-{start + j}")
                    for j, c in enumerate(chunk)
                ]
            self._finish_ranking(state)
        self._screen_telling = False
        if self._grid is None:
            self._grid = self._build_grid(state)
            self._grid_pos = 0
        if self._grid_pos >= len(self._grid):
            return []
        config = self._grid[self._grid_pos]
        self._grid_pos += 1
        return [Candidate(config, tag="sard-grid")]

    def finish(self, state: SearchState) -> None:
        # The ranking is reported even when the budget died mid-screen,
        # matching the sequential loop (which ranked whatever rows ran).
        if self._ranked is None:
            self._finish_ranking(state)
