"""SARD: Statistical Approach for Ranking Database tuning parameters.

Debnath et al. (ICDE'08): screen all knobs with a Plackett–Burman
two-level design (plus foldover to cancel even-order confounding), rank
them by main-effect magnitude, and focus subsequent tuning on the top
few.  :class:`SardRanker` exposes the ranking; :class:`SardTuner` adds
the natural follow-up — a small grid over the top-ranked knobs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parameters import Configuration, ConfigurationSpace
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.exceptions import BudgetExhausted
from repro.exec.resilience import FAILURE_POLICIES
from repro.mlkit.doe import foldover, main_effects, plackett_burman
from repro.mlkit.linear import lasso_rank_features
from repro.tuners.common import FAILURE_PENALTY_FACTOR, evaluate_prior_seeds

__all__ = ["SardRanker", "SardTuner"]

_LOW_UNIT, _HIGH_UNIT = 0.2, 0.8


class SardRanker:
    """Plackett–Burman screening of a configuration space.

    The design assigns each knob its low/high level (unit coordinates
    0.15/0.85) per run; after measuring all runs, the absolute main
    effect of each knob estimates its importance.
    """

    def __init__(self, use_foldover: bool = True):
        self.use_foldover = use_foldover

    def design_for(self, space: ConfigurationSpace) -> np.ndarray:
        design = plackett_burman(space.dimension)
        if self.use_foldover:
            design = foldover(design)
        return design

    def configs_for(
        self, space: ConfigurationSpace, rng: np.random.Generator
    ) -> Tuple[np.ndarray, List[Configuration]]:
        design = self.design_for(space)
        unit = np.where(design > 0, _HIGH_UNIT, _LOW_UNIT)
        configs = [space.from_array_feasible(row, rng) for row in unit]
        return design, configs

    def rank(
        self,
        session: TuningSession,
        max_runs: Optional[int] = None,
        batch_size: int = 1,
    ) -> List[Tuple[str, float]]:
        """Execute the design on budget and return (knob, |effect|)
        sorted descending.  Rows that do not fit the budget are dropped
        symmetrically (design rows are exchangeable).

        A two-level screening design is the canonical parallel DoE: all
        rows are decided before any response is seen, so with
        ``batch_size > 1`` the rows execute as atomic batches through
        :meth:`~repro.core.session.TuningSession.evaluate_batch`.

        Failed rows follow the session's failure policy: ``penalize``
        (large finite response), ``impute`` (median of successes so
        far), or ``discard`` (row dropped from the effect estimate —
        design rows are exchangeable, so the estimate stays unbiased).
        Hung rows (successful, infinite runtime) count as failures."""
        space = session.space
        policy = getattr(session, "failure_policy", "penalize")
        design, configs = self.configs_for(space, session.rng)
        limit = len(configs)
        if max_runs is not None:
            limit = min(limit, max_runs)
        responses: List[float] = []
        used_rows: List[int] = []
        # Failure responses reference the successes seen *before* the
        # failing row; replaying that bookkeeping incrementally makes a
        # batched screen rank identically to a sequential one (a batch's
        # later successes must not lower an earlier row's penalty).
        successes = [
            o.runtime_s for o in session.history.successful()
            if np.isfinite(o.runtime_s)
        ]

        def account(row: int, measurement) -> None:
            if measurement.ok and np.isfinite(measurement.runtime_s):
                responses.append(measurement.runtime_s)
                used_rows.append(row)
                successes.append(measurement.runtime_s)
                return
            if policy == "discard":
                return
            if policy == "impute":
                response = float(np.median(successes)) if successes else 100.0
            else:
                response = max(successes, default=100.0) * FAILURE_PENALTY_FACTOR
            responses.append(response)
            used_rows.append(row)

        if batch_size > 1:
            for start in range(0, limit, batch_size):
                chunk = configs[start:min(start + batch_size, limit)]
                try:
                    measurements = session.evaluate_batch(
                        chunk,
                        tags=[f"pb-{start + j}" for j in range(len(chunk))],
                    )
                except BudgetExhausted:
                    break
                for j, measurement in enumerate(measurements):
                    account(start + j, measurement)
        else:
            for i in range(limit):
                measurement = session.evaluate_if_budget(configs[i], tag=f"pb-{i}")
                if measurement is None:
                    break
                account(i, measurement)
        if len(used_rows) < 4:
            return [(name, 0.0) for name in space.names()]
        effects = main_effects(design[used_rows], np.array(responses))
        ranked = sorted(
            zip(space.names(), np.abs(effects)), key=lambda kv: -kv[1]
        )
        return ranked


@register_tuner("sard")
class SardTuner(Tuner):
    """PB screening, then a grid over the top-ranked knobs."""

    name = "sard"
    category = "experiment-driven"

    def __init__(
        self,
        top_k: int = 3,
        levels: int = 3,
        use_foldover: bool = True,
        batch_size: int = 1,
        failure_policy: Optional[str] = None,
        warm_start: bool = False,
    ):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}"
            )
        self.top_k = top_k
        self.levels = levels
        self.batch_size = batch_size
        #: How failed screening rows enter the effect estimate (opt-in;
        #: flows into the tuning session — see ``Tuner.failure_policy``).
        self.failure_policy = failure_policy
        #: Rank knobs from transfer-prior data instead of running the
        #: PB screen — the screen is most of SARD's experiment cost, so
        #: a usable prior converts almost the whole budget into grid
        #: refinement over the knobs that mattered on similar workloads.
        self.warm_start = warm_start
        self.ranker = SardRanker(use_foldover=use_foldover)

    def _prior_ranking(
        self, session: TuningSession
    ) -> Optional[List[Tuple[str, float]]]:
        """Knob importances from the prior's (X, y), via the lasso path
        (OtterTune's criterion).  None when the prior is too small to
        rank ``space.dimension`` features credibly."""
        X, y = session.prior_training_data()
        if len(y) < max(8, session.space.dimension // 3):
            return None
        order = lasso_rank_features(X, np.log(np.maximum(y, 1e-9)))
        names = session.space.names()
        d = len(order)
        return [(names[j], float(d - pos)) for pos, j in enumerate(order)]

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        session.evaluate(session.default_config(), tag="default")
        ranked = self._prior_ranking(session) if self.warm_start else None
        if ranked is not None:
            session.extras["sard_ranking_source"] = "transfer-prior"
            evaluate_prior_seeds(session, k=2)
        else:
            # Spend at most ~60% of the budget on screening, the rest
            # on the focused grid.
            screen_budget = max(4, int(session.budget.max_runs * 0.6))
            ranked = self.ranker.rank(
                session, max_runs=screen_budget, batch_size=self.batch_size
            )
        session.extras["sard_ranking"] = ranked
        top = [name for name, _ in ranked[: self.top_k]]

        space = session.space
        grids = {n: space[n].grid(self.levels) for n in top}

        def recurse(idx: int, overrides: dict) -> None:
            if idx == len(top):
                try:
                    config = space.partial(overrides)
                except Exception:
                    return
                session.evaluate(config, tag="sard-grid")
                return
            for value in grids[top[idx]]:
                overrides[top[idx]] = value
                recurse(idx + 1, overrides)
            del overrides[top[idx]]

        try:
            recurse(0, {})
        except BudgetExhausted:
            pass
        return None
