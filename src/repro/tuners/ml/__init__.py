"""Machine-learning tuners: OtterTune, Bayesian optimization, MLP."""

from repro.tuners.ml.cem import CrossEntropyTuner
from repro.tuners.ml.ensemble import EnsembleTuner
from repro.tuners.ml.ernest import ErnestTuner
from repro.tuners.ml.gp_tuner import BayesOptTuner
from repro.tuners.ml.nn_tuner import NeuralNetTuner
from repro.tuners.ml.ottertune import (
    OtterTuneRepository,
    OtterTuneTuner,
    build_repository,
)

__all__ = [
    "BayesOptTuner",
    "CrossEntropyTuner",
    "EnsembleTuner",
    "ErnestTuner",
    "NeuralNetTuner",
    "OtterTuneRepository",
    "OtterTuneTuner",
    "build_repository",
]
