"""Cross-entropy method tuner — policy-search-style configuration
optimization.

The tutorial's closing discussion points toward learning-based control;
the field's next step after it (CDBTune/QTune) was reinforcement-style
policy search.  The cross-entropy method is the simplest member of that
family: maintain a Gaussian *policy* over unit-encoded configurations,
sample a batch, keep the elite fraction, refit the policy toward them,
and repeat.  No value function, no gradients — just distribution
shaping, which is robust at tuning's tiny sample sizes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.tuners.common import penalized_runtime

__all__ = ["CrossEntropyTuner"]


@register_tuner("cem")
class CrossEntropyTuner(Tuner):
    """Gaussian policy search over the unit cube."""

    name = "cem"
    category = "machine-learning"

    def __init__(
        self,
        batch: int = 8,
        elite_frac: float = 0.3,
        init_std: float = 0.35,
        min_std: float = 0.04,
        smoothing: float = 0.5,
    ):
        if batch < 4:
            raise ValueError("batch must be >= 4")
        if not (0.0 < elite_frac < 1.0):
            raise ValueError("elite_frac in (0, 1)")
        if not (0.0 <= smoothing <= 1.0):
            raise ValueError("smoothing in [0, 1]")
        self.batch = batch
        self.elite_frac = elite_frac
        self.init_std = init_std
        self.min_std = min_std
        self.smoothing = smoothing

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        d = space.dimension

        default = session.default_config()
        session.evaluate(default, tag="default")

        # Policy initialized at the default configuration — tuning
        # starts from what the operator runs today.
        mean = default.to_array().astype(float)
        std = np.full(d, self.init_std)
        n_elite = max(2, int(round(self.batch * self.elite_frac)))

        generation = 0
        while session.can_run():
            scored: List[Tuple[float, np.ndarray]] = []
            for i in range(self.batch):
                if not session.can_run():
                    break
                x = np.clip(rng.normal(mean, std), 0.0, 1.0)
                config = space.from_array_feasible(x, rng)
                measurement = session.evaluate(config, tag=f"cem-g{generation}-{i}")
                scored.append(
                    (penalized_runtime(measurement, session.history), config.to_array())
                )
            if len(scored) < n_elite:
                break
            scored.sort(key=lambda item: item[0])
            elite = np.stack([x for _, x in scored[:n_elite]])
            new_mean = elite.mean(axis=0)
            new_std = elite.std(axis=0)
            # Smooth updates keep the policy from collapsing on a fluke.
            mean = self.smoothing * new_mean + (1 - self.smoothing) * mean
            std = np.maximum(
                self.smoothing * new_std + (1 - self.smoothing) * std,
                self.min_std,
            )
            generation += 1
        session.extras["cem_generations"] = generation
        session.extras["cem_final_std"] = float(np.mean(std))
        return None
