"""Cross-entropy method tuner — policy-search-style configuration
optimization.

The tutorial's closing discussion points toward learning-based control;
the field's next step after it (CDBTune/QTune) was reinforcement-style
policy search.  The cross-entropy method is the simplest member of that
family: maintain a Gaussian *policy* over unit-encoded configurations,
sample a batch, keep the elite fraction, refit the policy toward them,
and repeat.  No value function, no gradients — just distribution
shaping, which is robust at tuning's tiny sample sizes.

Each policy batch is one ask — CEM is embarrassingly parallel within a
generation, so the driver fans whole generations out.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.measurement import Observation
from repro.core.registry import register_tuner
from repro.tuners.common import ResponseReplay

__all__ = ["CrossEntropyTuner"]


@register_tuner("cem")
class CrossEntropyTuner(SearchTuner):
    """Gaussian policy search over the unit cube."""

    name = "cem"
    category = "machine-learning"

    def __init__(
        self,
        batch: int = 8,
        elite_frac: float = 0.3,
        init_std: float = 0.35,
        min_std: float = 0.04,
        smoothing: float = 0.5,
    ):
        if batch < 4:
            raise ValueError("batch must be >= 4")
        if not (0.0 < elite_frac < 1.0):
            raise ValueError("elite_frac in (0, 1)")
        if not (0.0 <= smoothing <= 1.0):
            raise ValueError("smoothing in [0, 1]")
        self.batch = batch
        self.elite_frac = elite_frac
        self.init_std = init_std
        self.min_std = min_std
        self.smoothing = smoothing

    def setup(self, state: SearchState) -> None:
        self._replay = ResponseReplay("penalize")
        d = state.space.dimension
        # Policy initialized at the default configuration — tuning
        # starts from what the operator runs today.
        self._mean = state.default_config().to_array().astype(float)
        self._std = np.full(d, self.init_std)
        self._n_elite = max(2, int(round(self.batch * self.elite_frac)))
        self._generation = 0
        self._started = False
        self._stop = False

    def tell(self, state: SearchState, results: List[Observation]) -> None:
        if not self._started:
            # The default evaluation anchors the incumbent but is not a
            # policy sample — it never enters the elite set.
            return
        scored = [
            (self._replay.account(o), o.config.to_array()) for o in results
        ]
        # Under multi-fidelity screening the tell only covers the
        # promoted survivors — already the batch's elite by screening
        # rank, so any non-empty set refits the policy.
        needed = 1 if self.multi_fidelity else self._n_elite
        if len(scored) < needed:
            self._stop = True
            return
        scored.sort(key=lambda item: item[0])
        elite = np.stack([x for _, x in scored[: self._n_elite]])
        new_mean = elite.mean(axis=0)
        new_std = elite.std(axis=0)
        # Smooth updates keep the policy from collapsing on a fluke.
        self._mean = self.smoothing * new_mean + (1 - self.smoothing) * self._mean
        self._std = np.maximum(
            self.smoothing * new_std + (1 - self.smoothing) * self._std,
            self.min_std,
        )
        self._generation += 1

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        if self._stop:
            return []
        self._started = True
        space, rng = state.space, state.rng
        candidates = []
        for i in range(self.batch):
            x = np.clip(rng.normal(self._mean, self._std), 0.0, 1.0)
            candidates.append(
                Candidate(
                    space.from_array_feasible(x, rng),
                    tag=f"cem-g{self._generation}-{i}",
                )
            )
        return candidates

    def finish(self, state: SearchState) -> None:
        state.extras["cem_generations"] = self._generation
        state.extras["cem_final_std"] = float(np.mean(self._std))
