"""Committee-of-surrogates tuner.

The tutorial's ML-category weakness row notes it is "hard to choose the
proper model"; the standard mitigation is not to choose: an ensemble of
heterogeneous surrogates (GP, random forest, MLP) votes on candidates,
and the committee's *disagreement* substitutes for a principled
uncertainty — exploration targets configs the models disagree about.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.registry import register_tuner
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.neural import MLPRegressor
from repro.mlkit.sampling import latin_hypercube
from repro.mlkit.tree import RandomForest
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["EnsembleTuner"]


@register_tuner("ensemble")
class EnsembleTuner(SearchTuner):
    """GP + forest + MLP committee with disagreement-driven exploration."""

    name = "ensemble"
    category = "machine-learning"

    def __init__(
        self,
        n_init: int = 6,
        explore_weight: float = 1.0,
        n_candidates: int = 300,
        mlp_epochs: int = 200,
    ):
        self.n_init = n_init
        self.explore_weight = explore_weight
        self.n_candidates = n_candidates
        self.mlp_epochs = mlp_epochs

    def _committee_predict(
        self, X: np.ndarray, y: np.ndarray, Xc: np.ndarray, seed: int
    ):
        """Mean prediction and committee disagreement on candidates."""
        logy = np.log1p(y)
        predictions = []
        gp = GaussianProcess(optimize=True).fit(X, logy)
        predictions.append(gp.predict(Xc)[0])
        forest = RandomForest(n_trees=20, max_depth=7, seed=seed).fit(X, logy)
        predictions.append(forest.predict(Xc))
        if len(y) >= 8:
            mlp = MLPRegressor(hidden=(24, 24), epochs=self.mlp_epochs, seed=seed)
            mlp.fit(X, logy)
            predictions.append(mlp.predict(Xc))
        stack = np.stack(predictions)
        return stack.mean(axis=0), stack.std(axis=0)

    def setup(self, state: SearchState) -> None:
        self._init_asked = False
        self._step = 0

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        if not self._init_asked:
            self._init_asked = True
            n_init = min(self.n_init, max(state.remaining_runs - 2, 1))
            return [
                Candidate(space.from_array_feasible(row, rng), tag=f"init-{i}")
                for i, row in enumerate(latin_hypercube(n_init, space.dimension, rng))
            ]
        X, y = history_to_training_data(state)
        if len(y) < 4:
            return [Candidate(space.sample_configuration(rng), tag="fallback")]
        incumbent = state.best_config()
        candidates = candidate_pool(
            space, rng, n_random=self.n_candidates,
            anchors=[incumbent] if incumbent else None,
        )
        if not candidates:
            return []
        Xc = np.stack([c.to_array() for c in candidates])
        mean, disagreement = self._committee_predict(
            X, y, Xc, seed=int(rng.integers(1 << 30))
        )
        anneal = self.explore_weight / np.sqrt(1.0 + self._step)
        score = -mean + anneal * disagreement
        chosen = int(np.argmax(score))
        step = self._step
        self._step += 1
        return [
            Candidate(
                candidates[chosen],
                tag=f"ens-{step}",
                predicted_runtime_s=float(np.expm1(mean[chosen])),
                predict_tag="committee",
            )
        ]
