"""Ernest: efficient performance prediction for large-scale analytics
(Venkataraman et al., NSDI'16).

Ernest predicts a job's runtime at *full* data scale and *any* resource
allocation from a handful of cheap runs on *small samples* of the data.
The model is a non-negative least-squares fit of interpretable terms:

    t(s, m) = c0 + c1 * (s / m) + c2 * log(m) + c3 * m

where ``s`` is the data-scale fraction and ``m`` the parallelism
(executors here).  Training points are chosen on small scales (optimal
experiment design in the paper; a small grid here), so the *real* runs
are far cheaper than a full-scale execution — the trait that puts
Ernest in the paper's Spark section.

The tuner fits the model, picks the best parallelism for the full-scale
job, applies expert settings for the non-resource knobs, and validates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner

__all__ = ["ErnestTuner", "fit_ernest_model", "ernest_features"]


def ernest_features(scale: float, parallelism: float) -> np.ndarray:
    """The Ernest basis: [1, scale/m, log(m), m]."""
    m = max(parallelism, 1.0)
    return np.array([1.0, scale / m, math.log(m), m])


def fit_ernest_model(
    points: List[Tuple[float, float, float]]
) -> np.ndarray:
    """Fit non-negative coefficients to (scale, parallelism, runtime)
    observations.  NNLS keeps every term physically meaningful
    (runtimes cannot decrease without bound)."""
    if len(points) < 4:
        raise ValueError("Ernest needs at least 4 training points")
    A = np.stack([ernest_features(s, m) for s, m, _ in points])
    b = np.array([t for _, _, t in points])
    coef, _ = nnls(A, b)
    return coef


def predict_ernest(coef: np.ndarray, scale: float, parallelism: float) -> float:
    return float(coef @ ernest_features(scale, parallelism))


@register_tuner("ernest")
class ErnestTuner(Tuner):
    """Small-sample scaling-model tuning of parallelism (Spark-style).

    Args:
        sample_scales: data fractions used for training runs.
        sample_parallelism: executor counts used for training runs.
    """

    name = "ernest"
    category = "machine-learning"

    def __init__(
        self,
        sample_plan: Tuple[Tuple[float, int], ...] = (
            (0.05, 1), (0.05, 2), (0.05, 4), (0.05, 8),
            (0.1, 4), (0.1, 8), (0.2, 8),
        ),
    ):
        """Args:
            sample_plan: (data scale, parallelism) training points.  The
                default spends most points at the smallest scale and
                only ever samples slow low-parallelism settings there —
                Ernest's experiment-design frugality.
        """
        if any(not (0 < s < 1) for s, _ in sample_plan):
            raise ValueError("sample scales must be in (0, 1)")
        if len(sample_plan) < 4:
            raise ValueError("need at least 4 sample points")
        self.sample_plan = sample_plan

    def _parallelism_knob(self, session: TuningSession) -> Optional[str]:
        for knob in ("num_executors", "max_parallel_workers", "mapreduce_job_reduces"):
            if knob in session.space:
                return knob
        return None

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        knob = self._parallelism_knob(session)
        try:
            small = session.workload.scaled(self.sample_plan[0][0])
        except (NotImplementedError, ValueError):
            small = None
        if knob is None or small is None:
            session.evaluate(session.default_config(), tag="default")
            return None

        space = session.space
        param = space[knob]
        default = session.default_config()

        # Training runs on sampled data (cheap by construction).
        points: List[Tuple[float, float, float]] = []
        for scale, m in self.sample_plan:
            if not session.can_run():
                break
            workload = session.workload.scaled(scale)
            config = default.replace(**{knob: param.clip(m)})
            measurement = session.evaluate_workload(
                workload, config, tag=f"sample-s{scale:g}-m{m}"
            )
            if measurement.ok:
                points.append((scale, float(m), measurement.runtime_s))

        if len(points) < 4:
            session.evaluate_if_budget(default, tag="fallback")
            return None
        coef = fit_ernest_model(points)
        session.extras["ernest_coefficients"] = coef.tolist()

        # Choose parallelism for the full-scale job from the model.
        candidates = sorted({
            int(param.clip(m))
            for m in [1, 2, 4, 8, 12, 16, 24, 32, 48, 64]
        })
        predictions = {
            m: predict_ernest(coef, 1.0, m) for m in candidates
        }
        session.extras["ernest_predictions"] = predictions
        best_m = min(predictions, key=predictions.get)
        recommended = default.replace(**{knob: best_m})
        session.predict(recommended, predictions[best_m], tag="ernest")
        validation = session.evaluate_if_budget(recommended, tag="validate")
        if validation is not None and not validation.ok:
            return default
        # Return the recommendation explicitly: the session history also
        # contains *sampled-scale* runs whose small runtimes must not be
        # mistaken for full-scale results.
        return recommended
