"""Plain Bayesian-optimization tuner (GP surrogate, selectable
acquisition).

The generic "machine learning" member of the taxonomy: a black-box
model over configurations with no knowledge of system internals, no
history, and no designs — everything is learned from this session's
observations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.registry import register_tuner
from repro.mlkit.acquisition import maximize_acquisition
from repro.mlkit.gp import GaussianProcess
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["BayesOptTuner"]


@register_tuner("bayesopt")
class BayesOptTuner(SearchTuner):
    """GP-based Bayesian optimization over the full knob space.

    With ``warm_start=True`` and a transfer prior on the session, the
    driver (a) evaluates the prior's best configurations before random
    init, the strategy then (b) shrinks random init accordingly, and
    (c) stacks the prior's scaled pseudo-observations into the GP's
    training data.
    """

    name = "bayesopt"
    category = "machine-learning"

    def __init__(
        self,
        n_init: int = 5,
        acquisition: str = "ei",
        kappa: float = 2.0,
        xi: float = 0.0,
        n_candidates: int = 400,
        warm_start: bool = False,
    ):
        if acquisition not in ("ei", "pi", "lcb"):
            raise ValueError(f"unknown acquisition {acquisition!r}")
        self.n_init = n_init
        self.acquisition = acquisition
        self.kappa = kappa
        self.xi = xi
        self.n_candidates = n_candidates
        self.warm_start = warm_start

    def wants_prior_seeds(self, state: SearchState) -> int:
        return min(3, self.n_init) if self.warm_start else 0

    def setup(self, state: SearchState) -> None:
        self._init_asked = False
        self._step = 0

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        if not self._init_asked:
            self._init_asked = True
            seeded = state.seeded_prior_runs
            n_init = max(self.n_init - seeded, 1 if seeded == 0 else 0)
            count = min(n_init, max(state.remaining_runs - 1, 0))
            if count > 0:
                return [
                    Candidate(space.sample_configuration(rng), tag=f"init-{i}")
                    for i in range(count)
                ]
        use_prior = state.prior is not None and len(state.prior) > 0
        X, y = history_to_training_data(state, include_prior=use_prior)
        if len(y) < 3:
            return [Candidate(space.sample_configuration(rng), tag="fallback")]
        gp = GaussianProcess(optimize=True).fit(X, np.log(y))
        incumbent = state.best_config()
        candidates = candidate_pool(
            space, rng, n_random=self.n_candidates,
            anchors=[incumbent] if incumbent else None,
        )
        if not candidates:
            return []
        Xc = np.stack([c.to_array() for c in candidates])
        idx, _ = maximize_acquisition(
            gp, float(np.log(state.best_runtime())), Xc,
            kind=self.acquisition, xi=self.xi, kappa=self.kappa,
        )
        step = self._step
        self._step += 1
        return [Candidate(candidates[idx], tag=f"bo-{step}")]
