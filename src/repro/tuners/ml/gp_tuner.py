"""Plain Bayesian-optimization tuner (GP surrogate, selectable
acquisition).

The generic "machine learning" member of the taxonomy: a black-box
model over configurations with no knowledge of system internals, no
history, and no designs — everything is learned from this session's
observations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.mlkit.acquisition import maximize_acquisition
from repro.mlkit.gp import GaussianProcess
from repro.tuners.common import (
    candidate_pool,
    evaluate_prior_seeds,
    history_to_training_data,
)

__all__ = ["BayesOptTuner"]


@register_tuner("bayesopt")
class BayesOptTuner(Tuner):
    """GP-based Bayesian optimization over the full knob space.

    With ``warm_start=True`` and a transfer prior on the session, the
    tuner (a) evaluates the prior's best configurations before random
    init, (b) shrinks random init accordingly, and (c) stacks the
    prior's scaled pseudo-observations into the GP's training data.
    """

    name = "bayesopt"
    category = "machine-learning"

    def __init__(
        self,
        n_init: int = 5,
        acquisition: str = "ei",
        kappa: float = 2.0,
        xi: float = 0.0,
        n_candidates: int = 400,
        warm_start: bool = False,
    ):
        if acquisition not in ("ei", "pi", "lcb"):
            raise ValueError(f"unknown acquisition {acquisition!r}")
        self.n_init = n_init
        self.acquisition = acquisition
        self.kappa = kappa
        self.xi = xi
        self.n_candidates = n_candidates
        self.warm_start = warm_start

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        session.evaluate(session.default_config(), tag="default")
        seeded = evaluate_prior_seeds(session, k=min(3, self.n_init))
        n_init = max(self.n_init - seeded, 1 if seeded == 0 else 0)
        for i in range(min(n_init, max(session.remaining_runs - 1, 0))):
            config = space.sample_configuration(rng)
            if session.evaluate_if_budget(config, tag=f"init-{i}") is None:
                return None

        use_prior = session.prior is not None and len(session.prior) > 0
        step = 0
        while session.can_run():
            X, y = history_to_training_data(session, include_prior=use_prior)
            if len(y) < 3:
                session.evaluate(space.sample_configuration(rng), tag="fallback")
                continue
            gp = GaussianProcess(optimize=True).fit(X, np.log(y))
            incumbent = session.best_config()
            candidates = candidate_pool(
                space, rng, n_random=self.n_candidates,
                anchors=[incumbent] if incumbent else None,
            )
            if not candidates:
                break
            Xc = np.stack([c.to_array() for c in candidates])
            idx, _ = maximize_acquisition(
                gp, float(np.log(session.best_runtime())), Xc,
                kind=self.acquisition, xi=self.xi, kappa=self.kappa,
            )
            if session.evaluate_if_budget(candidates[idx], tag=f"bo-{step}") is None:
                break
            step += 1
        return None
