"""Neural-network tuner (Rodd & Kulkarni, IJCSIS 2010).

A small MLP learns the configuration → runtime surface from the
session's observations; each step recommends the candidate with the
lowest predicted runtime, with ε-greedy random exploration to keep the
training set diverse (neural surrogates give no principled uncertainty,
so exploration must be injected — a weakness Table 1 charges the whole
category with: "hard to choose the proper model").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.registry import register_tuner
from repro.mlkit.neural import MLPRegressor
from repro.mlkit.sampling import latin_hypercube
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["NeuralNetTuner"]


@register_tuner("nn-tuner")
class NeuralNetTuner(SearchTuner):
    """MLP surrogate with ε-greedy argmin recommendation."""

    name = "nn-tuner"
    category = "machine-learning"

    def __init__(
        self,
        n_init: int = 8,
        epsilon: float = 0.15,
        hidden=(32, 32),
        epochs: int = 300,
        n_candidates: int = 300,
    ):
        if not (0.0 <= epsilon <= 1.0):
            raise ValueError("epsilon in [0, 1]")
        self.n_init = n_init
        self.epsilon = epsilon
        self.hidden = hidden
        self.epochs = epochs
        self.n_candidates = n_candidates

    def setup(self, state: SearchState) -> None:
        self._init_asked = False
        self._step = 0

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        if not self._init_asked:
            self._init_asked = True
            n_init = min(self.n_init, max(state.remaining_runs - 2, 1))
            return [
                Candidate(space.from_array_feasible(row, rng), tag=f"init-{i}")
                for i, row in enumerate(latin_hypercube(n_init, space.dimension, rng))
            ]
        if rng.random() < self.epsilon:
            return [Candidate(space.sample_configuration(rng), tag="explore")]
        X, y = history_to_training_data(state)
        if len(y) < 4:
            return [Candidate(space.sample_configuration(rng), tag="fallback")]
        # Log-scale targets stabilize training across decades.
        model = MLPRegressor(
            hidden=self.hidden, epochs=self.epochs,
            seed=int(rng.integers(1 << 30)),
        ).fit(X, np.log1p(y))
        incumbent = state.best_config()
        candidates = candidate_pool(
            space, rng, n_random=self.n_candidates,
            anchors=[incumbent] if incumbent else None,
        )
        if not candidates:
            return []
        Xc = np.stack([c.to_array() for c in candidates])
        pred = model.predict(Xc)
        step = self._step
        self._step += 1
        return [
            Candidate(
                candidates[int(np.argmin(pred))],
                tag=f"nn-{step}",
                predicted_runtime_s=float(np.expm1(pred.min())),
                predict_tag="nn",
            )
        ]
