"""Neural-network tuner (Rodd & Kulkarni, IJCSIS 2010).

A small MLP learns the configuration → runtime surface from the
session's observations; each step recommends the candidate with the
lowest predicted runtime, with ε-greedy random exploration to keep the
training set diverse (neural surrogates give no principled uncertainty,
so exploration must be injected — a weakness Table 1 charges the whole
category with: "hard to choose the proper model").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.mlkit.neural import MLPRegressor
from repro.mlkit.sampling import latin_hypercube
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["NeuralNetTuner"]


@register_tuner("nn-tuner")
class NeuralNetTuner(Tuner):
    """MLP surrogate with ε-greedy argmin recommendation."""

    name = "nn-tuner"
    category = "machine-learning"

    def __init__(
        self,
        n_init: int = 8,
        epsilon: float = 0.15,
        hidden=(32, 32),
        epochs: int = 300,
        n_candidates: int = 300,
    ):
        if not (0.0 <= epsilon <= 1.0):
            raise ValueError("epsilon in [0, 1]")
        self.n_init = n_init
        self.epsilon = epsilon
        self.hidden = hidden
        self.epochs = epochs
        self.n_candidates = n_candidates

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        space = session.space
        rng = session.rng
        session.evaluate(session.default_config(), tag="default")
        n_init = min(self.n_init, max(session.remaining_runs - 2, 1))
        for i, row in enumerate(latin_hypercube(n_init, space.dimension, rng)):
            if session.evaluate_if_budget(
                space.from_array_feasible(row, rng), tag=f"init-{i}"
            ) is None:
                return None

        step = 0
        while session.can_run():
            if rng.random() < self.epsilon:
                config = space.sample_configuration(rng)
                if session.evaluate_if_budget(config, tag="explore") is None:
                    break
                continue
            X, y = history_to_training_data(session)
            if len(y) < 4:
                session.evaluate(space.sample_configuration(rng), tag="fallback")
                continue
            # Log-scale targets stabilize training across decades.
            model = MLPRegressor(
                hidden=self.hidden, epochs=self.epochs,
                seed=int(rng.integers(1 << 30)),
            ).fit(X, np.log1p(y))
            incumbent = session.best_config()
            candidates = candidate_pool(
                space, rng, n_random=self.n_candidates,
                anchors=[incumbent] if incumbent else None,
            )
            if not candidates:
                break
            Xc = np.stack([c.to_array() for c in candidates])
            pred = model.predict(Xc)
            chosen = candidates[int(np.argmin(pred))]
            session.predict(chosen, float(np.expm1(pred.min())), tag="nn")
            if session.evaluate_if_budget(chosen, tag=f"nn-{step}") is None:
                break
            step += 1
        return None
