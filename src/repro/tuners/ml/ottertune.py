"""OtterTune: tuning through large-scale machine learning.

Van Aken et al. (SIGMOD'17).  The pipeline, faithfully staged:

1. **Repository** — historical observations from previously tuned
   workloads (other tenants' sessions).  Here the repository is built by
   sampling the simulator offline; the target workload is excluded.
2. **Metric pruning** — factor analysis embeds each runtime metric by
   its loadings; k-means clusters the embeddings; the metric nearest
   each centroid represents its cluster.
3. **Knob ranking** — lasso-path order over (knobs → runtime) with the
   repository's data picks the few knobs worth tuning.
4. **Workload mapping** — the target's observed metric vectors are
   compared against each repository workload's (predicted) metrics at
   the same configurations; the closest workload's data is merged into
   the training set.
5. **Recommendation** — a GP over the top knobs, trained on mapped +
   target data, maximizes expected improvement to propose the next
   configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.runner import ParallelRunner
    from repro.kb.store import KnowledgeBase

import numpy as np

from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.parameters import Configuration, ConfigurationSpace
from repro.core.registry import register_tuner
from repro.core.system import SystemUnderTune
from repro.core.workload import Workload
from repro.exceptions import TuningError
from repro.exec.resilience import FAILURE_POLICIES
from repro.mlkit.acquisition import expected_improvement
from repro.mlkit.cluster import KMeans
from repro.mlkit.factor import FactorAnalysis
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.linear import lasso_rank_features
from repro.mlkit.sampling import latin_hypercube
from repro.mlkit.scaler import StandardScaler
from repro.tuners.common import candidate_pool, history_to_training_data

__all__ = ["OtterTuneRepository", "OtterTuneTuner", "build_repository"]


@dataclass
class _WorkloadData:
    """Observations for one repository workload."""

    name: str
    X: np.ndarray          # (n, d) unit-scaled configs
    y: np.ndarray          # (n,) runtimes
    metrics: np.ndarray    # (n, m) metric matrix


@dataclass
class OtterTuneRepository:
    """Historical tuning data across many workloads on one system.

    The canonical backing store is the persistent knowledge base
    (:meth:`from_kb`): every tuning session or offline sampling pass
    ingested there becomes repository data, shared across processes and
    tuner kinds.  The plain dataclass constructor remains as the
    in-memory shim for tests and self-contained pipelines
    (:func:`build_repository` without a ``kb``).
    """

    metric_names: List[str]
    workloads: List[_WorkloadData] = field(default_factory=list)

    def add(self, name: str, X: np.ndarray, y: np.ndarray, metrics: np.ndarray) -> None:
        self.workloads.append(_WorkloadData(name, X, y, metrics))

    @classmethod
    def from_kb(
        cls,
        kb: "KnowledgeBase",
        system: SystemUnderTune,
        min_samples: int = 5,
        exclude_workloads: Sequence[str] = (),
    ) -> "OtterTuneRepository":
        """Materialize the repository from stored knowledge-base sessions.

        Sessions are grouped by workload name (only those recorded on
        this system kind with the *same knob catalog*); each workload
        needs ``min_samples`` finite successful observations across its
        sessions to enter the repository.  ``exclude_workloads`` keeps
        the target workload's own history out — OtterTune's repository
        is other tenants' data by definition.
        """
        repo = cls(metric_names=list(system.metric_names))
        space = system.config_space
        excluded = set(exclude_workloads)
        grouped: Dict[str, List[int]] = {}
        for record in kb.sessions(
            system_kind=system.kind, space_names=space.names()
        ):
            if record.workload_name not in excluded:
                grouped.setdefault(record.workload_name, []).append(
                    record.session_id
                )
        for name in sorted(grouped):
            X_rows, y_rows, m_rows = [], [], []
            for session_id in grouped[name]:
                try:
                    history = kb.history(session_id, space)
                except Exception:
                    continue
                for obs in history.finite_successful():
                    X_rows.append(obs.config.to_array())
                    y_rows.append(obs.runtime_s)
                    m_rows.append(
                        obs.measurement.metric_vector(repo.metric_names)
                    )
            if len(y_rows) >= min_samples:
                repo.add(
                    name, np.array(X_rows), np.array(y_rows), np.array(m_rows)
                )
        if not repo.workloads:
            raise TuningError(
                "knowledge base holds no usable repository data for "
                f"system kind {system.kind!r}"
            )
        return repo

    def all_observations(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        X = np.vstack([w.X for w in self.workloads])
        y = np.concatenate([w.y for w in self.workloads])
        M = np.vstack([w.metrics for w in self.workloads])
        return X, y, M

    # -- stage 2: metric pruning -------------------------------------------
    def pruned_metrics(self, n_factors: int = 5, max_clusters: int = 8) -> List[int]:
        """Indices of representative metrics (one per k-means cluster)."""
        _, _, M = self.all_observations()
        # Drop constant metrics first; they carry no signal.
        keep = [j for j in range(M.shape[1]) if M[:, j].std() > 1e-9]
        if not keep:
            return list(range(min(3, M.shape[1])))
        Z = StandardScaler().fit_transform(M[:, keep])
        fa = FactorAnalysis(n_factors=min(n_factors, Z.shape[1], max(1, Z.shape[0] - 1)))
        fa.fit(Z)
        embeddings = fa.loadings_  # (n_kept_metrics, k)
        k = min(max_clusters, len(keep))
        if k < 2:
            return keep
        km = KMeans(k=k, n_init=3).fit(embeddings)
        reps = km.representatives(embeddings)
        return sorted({keep[int(r)] for r in reps})

    # -- stage 3: knob ranking ----------------------------------------------
    def ranked_knobs(self, space: ConfigurationSpace) -> List[str]:
        X, y, _ = self.all_observations()
        order = lasso_rank_features(X, y)
        names = space.names()
        return [names[j] for j in order]


def build_repository(
    system: SystemUnderTune,
    workloads: Sequence[Workload],
    n_samples: int = 30,
    rng: Optional[np.random.Generator] = None,
    runner: Optional["ParallelRunner"] = None,
    kb: Optional["KnowledgeBase"] = None,
) -> OtterTuneRepository:
    """Sample the system offline over several workloads.

    This plays the role of OtterTune's multi-tenant history: data that
    existed *before* the target tuning session and is therefore not
    charged to its budget.

    Repository samples are independent deterministic runs, so they fan
    out across ``runner`` (default: a fresh
    :class:`~repro.exec.runner.ParallelRunner`, serial unless
    ``REPRO_JOBS`` asks for workers) and memoize through the process
    evaluation cache; the seeded design — and therefore the repository
    — is identical however many workers execute it.

    With ``kb`` given, each workload's samples are also persisted as a
    knowledge-base session (tuner ``"repository-sampler"``), making the
    sweep reusable by :meth:`OtterTuneRepository.from_kb` and by
    warm-started tuners in later processes.
    """
    from repro.core.measurement import Observation, TuningHistory
    from repro.exec.cache import global_cache
    from repro.exec.runner import ParallelRunner

    rng = rng or np.random.default_rng(7)
    repo = OtterTuneRepository(metric_names=list(system.metric_names))
    space = system.config_space
    own_runner = runner is None
    runner = runner or ParallelRunner()
    cache = global_cache()
    try:
        measured = _sample_workloads(
            system, workloads, space, n_samples, rng, runner, cache
        )
    finally:
        if own_runner:
            runner.close()
    for workload, configs, measurements in measured:
        X_rows, y_rows, m_rows = [], [], []
        for config, measurement in zip(configs, measurements):
            X_rows.append(config.to_array())
            if measurement.ok:
                y_rows.append(measurement.runtime_s)
            else:
                y_rows.append(np.inf)
            m_rows.append(measurement.metric_vector(repo.metric_names))
        X = np.array(X_rows)
        y = np.array(y_rows)
        M = np.array(m_rows)
        ok = np.isfinite(y)
        if ok.sum() >= 5:
            worst = y[ok].max()
            y = np.where(ok, y, worst * 3.0)
            repo.add(workload.name, X, y, M)
        if kb is not None:
            history = TuningHistory()
            history.extend(
                Observation(config=c, measurement=m, tag="repository")
                for c, m in zip(configs, measurements)
            )
            kb.ingest_history(
                system, workload, history, tuner_name="repository-sampler"
            )
    if not repo.workloads:
        raise TuningError("repository construction produced no usable data")
    return repo


def _repository_run(
    system: SystemUnderTune, workload: Workload, config: Configuration
):
    """Top-level (picklable) worker task for repository sampling."""
    return system.run(workload, config)


def _sample_workloads(system, workloads, space, n_samples, rng, runner, cache):
    """Execute each workload's seeded LHS design, possibly in parallel.

    Configurations decode serially (they consume ``rng``), then the
    deterministic runs fan out; results return in design order so the
    repository is bit-identical to serial construction.
    """
    measured = []
    for workload in workloads:
        design = latin_hypercube(n_samples, space.dimension, rng)
        configs = [space.from_array_feasible(row, rng) for row in design]
        if cache is not None:
            measurements = [None] * len(configs)
            pending = [
                (i, c) for i, c in enumerate(configs)
            ]
            if runner.effective_jobs > 1:
                # Warm the cache concurrently for missing points only.
                cold = []
                for i, c in pending:
                    try:
                        if cache.key_for(system, workload, c) not in cache:
                            cold.append(c)
                    except Exception:
                        cold = []
                        break
                if cold:
                    for c, m in zip(
                        cold,
                        runner.starmap(
                            _repository_run,
                            [(system, workload, c) for c in cold],
                        ),
                    ):
                        cache.store(cache.key_for(system, workload, c), m)
            for i, c in pending:
                measurements[i] = cache.run(system, workload, c)
        elif runner.effective_jobs > 1:
            measurements = runner.starmap(
                _repository_run, [(system, workload, c) for c in configs]
            )
        else:
            measurements = [system.run(workload, c) for c in configs]
        measured.append((workload, configs, measurements))
    return measured


@register_tuner("ottertune")
class OtterTuneTuner(SearchTuner):
    """The OtterTune recommendation loop against a repository.

    Args:
        repository: historical data (required; OtterTune without history
            degrades to plain BO — use ``BayesOptTuner`` for that).
        top_k_knobs: how many ranked knobs the GP tunes.
        n_init: target-session observations before mapping kicks in.
    """

    name = "ottertune"
    category = "machine-learning"

    def __init__(
        self,
        repository: OtterTuneRepository,
        top_k_knobs: int = 8,
        n_init: int = 5,
        n_candidates: int = 400,
        use_mapping: bool = True,
        failure_policy: Optional[str] = None,
        warm_start: bool = False,
    ):
        if failure_policy is not None and failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}"
            )
        self.repository = repository
        self.top_k_knobs = top_k_knobs
        self.n_init = n_init
        self.n_candidates = n_candidates
        #: Ablation switch: with mapping off, the GP trains on target
        #: observations only (history still drives pruning/ranking).
        self.use_mapping = use_mapping
        #: How failed runs enter the GP when mapping is off (the mapped
        #: branch trains on successful target observations only).
        self.failure_policy = failure_policy
        #: Consume a knowledge-base transfer prior on top of the
        #: repository: the prior's best configurations replace part of
        #: the LHS init design (the repository already provides the
        #: model-side history, so seeding is the marginal win here).
        self.warm_start = warm_start

    # -- stage 4: workload mapping -------------------------------------------
    def _map_workload(
        self, target_X: np.ndarray, target_M: np.ndarray, pruned: List[int]
    ) -> Optional[_WorkloadData]:
        # The GP-per-metric mapping lives in the knowledge-base layer
        # now (generalized to any repository-shaped dataset); this
        # method remains as the tuner's seam for ablations/overrides.
        from repro.kb.fingerprint import map_workload

        return map_workload(
            target_X, target_M, pruned, self.repository.workloads
        )

    def wants_prior_seeds(self, state: SearchState) -> int:
        return 2 if self.warm_start else 0

    def setup(self, state: SearchState) -> None:
        space = state.space
        metric_names = self.repository.metric_names
        # Stages 2–3 run on repository data alone, before any target
        # experiment is spent.
        self._pruned = self.repository.pruned_metrics()
        top_knobs = self.repository.ranked_knobs(space)[: self.top_k_knobs]
        state.extras["ottertune_pruned_metrics"] = [
            metric_names[i] for i in self._pruned
        ]
        state.extras["ottertune_top_knobs"] = top_knobs
        self._knob_idx = [space.names().index(k) for k in top_knobs]
        self._init_asked = False
        self._step = 0
        self._mapped_name: Optional[str] = None

    def ask(self, state: SearchState) -> Sequence[Candidate]:
        space, rng = state.space, state.rng
        metric_names = self.repository.metric_names
        if not self._init_asked:
            self._init_asked = True
            n_init = min(
                max(self.n_init - state.seeded_prior_runs, 1),
                max(state.remaining_runs - 2, 1),
            )
            return [
                Candidate(space.from_array_feasible(row, rng), tag=f"init-{i}")
                for i, row in enumerate(
                    latin_hypercube(n_init, space.dimension, rng)
                )
            ]
        # Hung runs are "successful" with unbounded runtime; they
        # would wreck target_y's median scale and the GP targets.
        obs = state.history.finite_successful()
        target_X = np.stack([o.config.to_array() for o in obs]) if obs else np.zeros((0, space.dimension))
        target_y = np.array([o.runtime_s for o in obs])
        target_M = (
            np.stack([o.measurement.metric_vector(metric_names) for o in obs])
            if obs else np.zeros((0, len(metric_names)))
        )
        mapped = (
            self._map_workload(target_X, target_M, self._pruned)
            if self.use_mapping else None
        )
        if mapped is not None:
            self._mapped_name = mapped.name
            # Scale the mapped workload's runtimes onto the target's
            # scale before merging (OtterTune's target-first merge).
            scale = (
                np.median(target_y) / np.median(mapped.y)
                if len(target_y) and np.median(mapped.y) > 0
                else 1.0
            )
            train_X = np.vstack([mapped.X, target_X])
            train_y = np.concatenate([mapped.y * scale, target_y])
        else:
            train_X, train_y = history_to_training_data(state)
        if len(train_y) < 3:
            return [Candidate(space.sample_configuration(rng), tag="fallback")]

        gp = GaussianProcess(optimize=True).fit(
            train_X[:, self._knob_idx], np.log(np.maximum(train_y, 1e-6))
        )
        best = float(np.log(state.best_runtime()))
        incumbent = state.best_config()
        candidates = candidate_pool(
            space, rng, n_random=self.n_candidates,
            anchors=[incumbent] if incumbent else None,
        )
        if not candidates:
            return []
        Xc = np.stack([c.to_array() for c in candidates])[:, self._knob_idx]
        mean, std = gp.predict(Xc, return_std=True)
        ei = expected_improvement(mean, std, best)
        step = self._step
        self._step += 1
        return [Candidate(candidates[int(np.argmax(ei))], tag=f"rec-{step}")]

    def finish(self, state: SearchState) -> None:
        state.extras["ottertune_mapped_workload"] = self._mapped_name
