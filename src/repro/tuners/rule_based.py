"""Rule-based tuning: expert heuristics, constraint checking, navigation.

Three approaches from the taxonomy's first row:

* :class:`RuleBasedTuner` — the tuning-guide heuristics administrators
  apply by hand ("give the buffer pool 25% of RAM", "reducers = 0.95 ×
  slots", "always use Kryo"), encoded as per-system rule sets over the
  cluster's hardware and the workload's coarse signature.
* :class:`SpexValidator` — SPEX-style constraint inference: validate a
  configuration against declared constraints plus inferred performance
  hazards, and repair violations (avoid error-prone configs).
* :class:`ConfigNavigator` — Xu et al.'s answer to knob overload:
  surface the small subset of parameters worth a user's attention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.parameters import Configuration, ConfigurationSpace
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.system import SystemUnderTune
from repro.core.tuner import Tuner
from repro.exceptions import ConstraintViolation
from repro.systems.cluster import Cluster, NodeSpec

__all__ = ["TuningRule", "RuleBasedTuner", "SpexValidator", "ConfigNavigator"]


def _cluster_of(system: SystemUnderTune) -> Cluster:
    """Find the cluster behind (possibly wrapped) simulators."""
    for obj in (system, getattr(system, "inner", None)):
        cluster = getattr(obj, "cluster", None)
        if cluster is not None:
            return cluster
    return Cluster.single_node()


@dataclass(frozen=True)
class TuningRule:
    """One expert heuristic.

    Attributes:
        name: short identifier, e.g. ``"buffer-pool-25pct"``.
        rationale: the folklore the rule encodes.
        apply: callable (node, cluster, signature) -> knob overrides.
    """

    name: str
    rationale: str
    apply: Callable[[NodeSpec, Cluster, Mapping[str, float]], Dict[str, Any]]


# ---------------------------------------------------------------------------
# Per-system expert rule sets
# ---------------------------------------------------------------------------

def _dbms_rules() -> List[TuningRule]:
    return [
        TuningRule(
            "buffer-pool-25pct",
            "Dedicate ~25% of RAM to the shared buffer pool.",
            lambda node, cl, sig: {"buffer_pool_mb": int(node.memory_mb * 0.25)},
        ),
        TuningRule(
            "work-mem-per-session",
            "Split a quarter of RAM across sessions and parallel workers.",
            lambda node, cl, sig: {
                "work_mem_mb": max(
                    4,
                    min(
                        2048,
                        int(
                            node.memory_mb * 0.25
                            / (max(sig.get("sessions", 8), 1) + min(8, node.cores))
                            / 1.5
                        ),
                    ),
                )
            },
        ),
        TuningRule(
            "parallel-workers-cores",
            "Parallel workers up to the core count of one node.",
            lambda node, cl, sig: {"max_parallel_workers": min(8, node.cores)},
        ),
        TuningRule(
            "wal-and-checkpoints",
            "Raise WAL buffers and stretch checkpoints for write workloads.",
            lambda node, cl, sig: {
                "wal_buffers_mb": 64,
                "checkpoint_interval_s": 900,
            },
        ),
        TuningRule(
            "io-depth-for-fast-disks",
            "Deep I/O queues and cheap random reads on high-IOPS storage.",
            lambda node, cl, sig: (
                {"io_concurrency": 64, "random_page_cost": 2.0, "prefetch_depth": 64}
                if node.disk_random_iops >= 200
                else {"io_concurrency": 8, "random_page_cost": 4.0}
            ),
        ),
        TuningRule(
            "batch-commits-when-oltp",
            "Group commits under write-heavy transaction mixes.",
            lambda node, cl, sig: (
                {"log_flush_policy": "batch", "commit_delay_us": 2000}
                if sig.get("n_transactions", 0) > 0
                else {}
            ),
        ),
    ]


def _hadoop_rules() -> List[TuningRule]:
    def reducers(node: NodeSpec, cl: Cluster, sig: Mapping[str, float]) -> Dict[str, Any]:
        slots = sum(min(n.cores, int(n.memory_mb * 0.9 // 1024)) for n in cl.nodes)
        return {"mapreduce_job_reduces": max(1, int(0.95 * slots))}

    return [
        TuningRule(
            "reducers-95pct-slots",
            "Use ~0.95 × reduce slots so all reducers finish in one wave.",
            reducers,
        ),
        TuningRule(
            "sort-buffer-generous",
            "Size io.sort.mb to avoid multi-spill maps; grow containers to match.",
            lambda node, cl, sig: {
                "io_sort_mb": 256,
                "mapreduce_map_memory_mb": 1536,
                "mapreduce_reduce_memory_mb": 2048,
            },
        ),
        TuningRule(
            "compress-intermediates",
            "Snappy-compress map output: cheap CPU, big shuffle savings.",
            lambda node, cl, sig: {
                "map_output_compress": True,
                "compress_codec": "snappy",
            },
        ),
        TuningRule(
            "combiner-and-jvm-reuse",
            "Enable the combiner when the job has one; reuse JVMs.",
            lambda node, cl, sig: {"combiner_enabled": True, "jvm_reuse": True},
        ),
        TuningRule(
            "slowstart-for-shuffle-heavy",
            "Delay reducers when the shuffle is large relative to slots.",
            lambda node, cl, sig: (
                {"reduce_slowstart": 0.8}
                if sig.get("shuffle_mb", 0) > 4096
                else {"reduce_slowstart": 0.05}
            ),
        ),
        TuningRule(
            "big-blocks-for-big-inputs",
            "256 MiB blocks cut map-task overhead on large inputs.",
            lambda node, cl, sig: (
                {"dfs_block_size_mb": 256} if sig.get("input_mb", 0) > 20480 else {}
            ),
        ),
    ]


def _spark_rules() -> List[TuningRule]:
    def executors(node: NodeSpec, cl: Cluster, sig: Mapping[str, float]) -> Dict[str, Any]:
        cores_per_exec = 4
        per_node = max(1, node.cores // cores_per_exec)
        n_exec = max(1, per_node * len(cl) - 1)  # leave room for the driver
        exec_mem = int(node.memory_mb * 0.9 / per_node - 384)
        return {
            "executor_cores": cores_per_exec,
            "num_executors": min(64, n_exec),
            "executor_memory_mb": max(512, min(exec_mem, int(node.memory_mb * 0.9))),
        }

    return [
        TuningRule(
            "fat-executors-4cores",
            "~4 cores per executor balances HDFS throughput and GC.",
            executors,
        ),
        TuningRule(
            "partitions-2x-cores",
            "2-3 partitions per core keeps all slots busy without overhead.",
            lambda node, cl, sig: {
                "shuffle_partitions": max(8, min(2000, 2 * cl.total_cores))
            },
        ),
        TuningRule(
            "kryo-always",
            "Kryo serialization is strictly better for shuffle-heavy jobs.",
            lambda node, cl, sig: {"serializer": "kryo"},
        ),
        TuningRule(
            "broadcast-64mb",
            "Broadcast dimension tables up to 64 MiB.",
            lambda node, cl, sig: {"broadcast_threshold_mb": 64},
        ),
        TuningRule(
            "cache-room-for-iterative",
            "Give storage memory headroom when the app iterates over cached data.",
            lambda node, cl, sig: (
                {"memory_fraction": 0.75, "storage_fraction": 0.6}
                if sig.get("iterations", 1) > 1
                else {}
            ),
        ),
    ]


_RULEBOOK: Dict[str, Callable[[], List[TuningRule]]] = {
    "dbms": _dbms_rules,
    "hadoop": _hadoop_rules,
    "spark": _spark_rules,
}


@register_tuner("rule-based")
class RuleBasedTuner(Tuner):
    """Apply the expert rulebook for the system kind, then keep whichever
    of {default, rule config} measures faster.

    Costs exactly two real runs — the approach's defining strength
    (Table 1: cheap, no specialized software) and weakness (no search,
    so it plateaus at folklore quality).
    """

    name = "rule-based"
    category = "rule-based"

    def __init__(self, extra_rules: Optional[List[TuningRule]] = None):
        self.extra_rules = list(extra_rules or [])

    def rules_for(self, kind: str) -> List[TuningRule]:
        build = _RULEBOOK.get(kind)
        rules = build() if build else []
        return rules + self.extra_rules

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        cluster = _cluster_of(session.system)
        node = cluster.min_node
        signature = session.workload.signature()
        overrides: Dict[str, Any] = {}
        applied: List[str] = []
        for rule in self.rules_for(session.system.kind):
            try:
                patch = rule.apply(node, cluster, signature)
            except Exception:
                continue
            if patch:
                overrides.update(patch)
                applied.append(rule.name)
        session.extras["rules_applied"] = applied

        default = session.default_config()
        default_m = session.evaluate(default, tag="default")
        # Repair any constraint violation the combined rules introduce.
        validator = SpexValidator(session.space)
        overrides = validator.repair_values({**default.to_dict(), **overrides})
        try:
            candidate = session.space.configuration(overrides)
        except ConstraintViolation:
            return default
        cand_m = session.evaluate_if_budget(candidate, tag="rules")
        if cand_m is not None and cand_m.ok and cand_m.runtime_s < default_m.runtime_s:
            return candidate
        return default


class SpexValidator:
    """SPEX-style configuration validation and repair.

    Checks a value mapping against the space's declared constraints and
    parameter domains, reporting violations instead of raising; *repair*
    walks offending values back toward the defaults until feasible.
    """

    def __init__(self, space: ConfigurationSpace):
        self.space = space

    def violations(self, values: Mapping[str, Any]) -> List[str]:
        found: List[str] = []
        for param in self.space.parameters():
            if param.name in values:
                try:
                    param.validate(values[param.name])
                except Exception:
                    found.append(f"domain:{param.name}")
        complete = {p.name: p.default for p in self.space.parameters()}
        complete.update({k: v for k, v in values.items() if k in complete})
        for constraint in self.space.constraints():
            try:
                if not constraint.holds(complete):
                    found.append(f"constraint:{constraint.name}")
            except Exception:
                found.append(f"constraint:{constraint.name}")
        return found

    def repair_values(self, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Clamp domain violations, then bisect toward defaults until all
        constraints hold.  Always terminates: the default is feasible."""
        repaired: Dict[str, Any] = {}
        for param in self.space.parameters():
            v = values.get(param.name, param.default)
            try:
                repaired[param.name] = param.validate(v)
            except Exception:
                clip = getattr(param, "clip", None)
                repaired[param.name] = clip(v) if clip else param.default
        for _ in range(32):
            if self.space.is_feasible(repaired):
                return repaired
            for param in self.space.parameters():
                default = param.default
                current = repaired[param.name]
                if param.is_numeric and current != default:
                    repaired[param.name] = param.validate(
                        0.5 * (float(current) + float(default))
                    )
                elif current != default:
                    repaired[param.name] = default
        return {p.name: p.default for p in self.space.parameters()}


class ConfigNavigator:
    """Xu et al.: "you have given me too many knobs".

    Ranks a system's knobs by the expert knowledge base's impact tiers
    and produces the reduced space a non-expert should tune.  (The tiers
    come from the simulators' documented ground truth — exactly the role
    vendor documentation plays for the real tool.)
    """

    _KB = {
        "dbms": "repro.systems.dbms.knobs",
        "hadoop": "repro.systems.hadoop.knobs",
        "spark": "repro.systems.spark.knobs",
    }

    def ranked_knobs(self, kind: str) -> List[str]:
        import importlib

        module = importlib.import_module(self._KB[kind])
        impact: Dict[str, int] = module.GROUND_TRUTH_IMPACT
        return sorted(impact, key=lambda k: -impact[k])

    def navigated_space(
        self, space: ConfigurationSpace, kind: str, top_k: int = 8
    ) -> ConfigurationSpace:
        keep = [k for k in self.ranked_knobs(kind) if k in space][:top_k]
        return space.subspace(keep, name=f"{space.name}.navigated")
