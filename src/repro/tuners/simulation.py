"""Simulation-based tuners: trace replay and ADDM-style diagnosis.

* :class:`TraceSimulationTuner` (Narayanan et al., MASCOTS'05): one
  instrumented run yields a *trace* — the decomposition of runtime into
  resource components.  What-if questions are answered by replaying the
  trace against a resource model that rescales each component under the
  candidate configuration.  Fine-grained and cheap, but only as good as
  the component-scaling laws (Table 1: "hard to comprehensively simulate
  complex internal dynamics").

* :class:`AddmDiagnoser` (Dias et al., CIDR'05): Oracle's Automatic
  Database Diagnostic Monitor walks a DAG of time components, finds the
  dominant one, and applies the targeted remedy — then measures again.
  An iterative measure→diagnose→fix loop rather than a search.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.measurement import Measurement
from repro.core.parameters import Configuration
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.core.tuner import Tuner
from repro.tuners.rule_based import SpexValidator, _cluster_of

__all__ = ["TraceSimulationTuner", "AddmDiagnoser", "trace_replay_predict"]


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------

def _hit_ratio(bp_mb: float, hot_set_mb: float) -> float:
    """The replay model's buffer-hit law — deliberately a *linear-capped*
    approximation, not the system's true saturating curve; trace models
    are only as good as their component scaling laws."""
    return min(0.98, 0.9 * bp_mb / max(hot_set_mb, 1.0))


def trace_replay_predict(
    kind: str,
    base_config: Configuration,
    base_measurement: Measurement,
    candidate: Configuration,
    hot_set_mb: float = 1024.0,
) -> float:
    """Predict the candidate's runtime by rescaling the base trace.

    Each measured component is multiplied by the ratio of the resource
    law evaluated at candidate vs. base settings.
    """
    m = base_measurement.metrics
    base_total = base_measurement.runtime_s

    if kind == "dbms":
        # Raw component weights; per-transaction waits are reconstructed
        # from throughput.  Because sessions overlap, raw weights can
        # exceed wall time, so attribute the measured runtime to
        # components *proportionally* — the replay then rescales each
        # share under the candidate's resource laws and is exact at the
        # base configuration.
        n_tx = base_total * m.get("tps", 0.0)
        weights = {
            "io": m.get("io_time_s", 0.3 * base_total),
            "cpu": m.get("cpu_time_s", 0.3 * base_total),
            "commit": m.get("commit_wait_s", 0.0) * n_tx,
            "lock": m.get("lock_wait_s", 0.0) * n_tx,
            "checkpoint": m.get("checkpoint_overhead_s", 0.0),
        }
        total_w = sum(weights.values())
        if total_w <= 0:
            return base_total
        slack = max(1.0 - min(total_w / base_total, 1.0), 0.1)
        scale_to_s = base_total * (1.0 - slack) / total_w
        io = weights["io"] * scale_to_s
        cpu = weights["cpu"] * scale_to_s
        commit = weights["commit"] * scale_to_s
        lock = weights["lock"] * scale_to_s
        checkpoint = weights["checkpoint"] * scale_to_s
        other = base_total * slack

        base_miss = 1.0 - _hit_ratio(base_config["buffer_pool_mb"], hot_set_mb)
        cand_miss = 1.0 - _hit_ratio(candidate["buffer_pool_mb"], hot_set_mb)
        io_scale = cand_miss / max(base_miss, 1e-4)
        spill_scale = math.sqrt(
            max(float(base_config["work_mem_mb"]), 1.0)
            / max(float(candidate["work_mem_mb"]), 1.0)
        )
        io_scale *= spill_scale

        base_w = max(int(base_config["max_parallel_workers"]), 1)
        cand_w = max(int(candidate["max_parallel_workers"]), 1)
        cpu_scale = (0.15 + 0.85 / cand_w) / (0.15 + 0.85 / base_w)

        policy_cost = {"commit": 1.0, "batch": 0.4, "async": 0.05}
        commit_scale = policy_cost[candidate["log_flush_policy"]] / policy_cost[
            base_config["log_flush_policy"]
        ]
        cp_scale = float(base_config["checkpoint_interval_s"]) / max(
            float(candidate["checkpoint_interval_s"]), 1.0
        )
        lock_scale = math.sqrt(
            float(candidate["deadlock_timeout_ms"])
            / max(float(base_config["deadlock_timeout_ms"]), 1.0)
        )
        return (
            io * io_scale
            + cpu * cpu_scale
            + commit * commit_scale
            + lock * lock_scale
            + checkpoint * cp_scale
            + other
        )

    if kind == "hadoop":
        mp = m.get("map_phase_s", 0.3 * base_total)
        sh = m.get("shuffle_phase_s", 0.2 * base_total)
        rd = m.get("reduce_phase_s", 0.4 * base_total)
        other = max(base_total - mp - sh - rd, 0.0)
        base_red = max(float(base_config["mapreduce_job_reduces"]), 1.0)
        cand_red = max(float(candidate["mapreduce_job_reduces"]), 1.0)
        # Reduce work parallelizes sub-linearly with reducers; per-task
        # launch overhead is an absolute cost, not a multiple of the
        # phase length.
        rd_new = rd * (base_red / cand_red) ** 0.85 + 0.05 * (cand_red - base_red)
        rd_new = max(rd_new, 0.02 * rd)
        def comp(c):
            return 0.55 if c["map_output_compress"] else 1.0

        def combiner(c):
            return 0.5 if c["combiner_enabled"] else 1.0

        shuffle_scale = (
            comp(candidate) / comp(base_config)
            * combiner(candidate) / combiner(base_config)
        )
        sh_new = sh * shuffle_scale
        rd_new *= combiner(candidate) / combiner(base_config)
        slot_scale = float(base_config["mapreduce_map_memory_mb"]) / float(
            candidate["mapreduce_map_memory_mb"]
        )
        mp_new = mp * (0.7 + 0.3 / max(min(slot_scale, 4.0), 0.25))
        return mp_new + sh_new + rd_new + other

    if kind == "spark":
        stage = m.get("stage_time_s", base_total)
        other = max(base_total - stage, 0.0)
        def slots(c):
            return max(int(c["num_executors"]) * int(c["executor_cores"]), 1)

        slot_scale = slots(base_config) / slots(candidate)
        part_scale = float(candidate["shuffle_partitions"]) / max(
            float(base_config["shuffle_partitions"]), 1.0
        )
        overhead = 0.02 * (part_scale - 1.0)
        def ser(c):
            return 0.9 if c["serializer"] == "kryo" else 2.5

        ser_scale = 0.7 + 0.3 * ser(candidate) / ser(base_config)
        return stage * (0.3 + 0.7 * slot_scale) * ser_scale * (1.0 + max(overhead, -0.015)) + other

    raise ValueError(f"no trace model for kind {kind!r}")


_TASK_OVERHEAD_MB = 300.0  # JVM overhead a profiled trace reveals


def hadoop_container_infeasible(config, trace_shuffle_mb: float) -> bool:
    """Container-sizing sanity a MapReduce modeler applies: the map JVM
    must hold its sort buffer plus overhead, and the reduce JVM must
    hold its shuffle buffer (bounded by its per-reducer share) plus
    overhead."""
    if config["mapreduce_map_memory_mb"] < config["io_sort_mb"] + _TASK_OVERHEAD_MB:
        return True
    per_red = trace_shuffle_mb / max(float(config["mapreduce_job_reduces"]), 1.0)
    red_buffer = (
        config["mapreduce_reduce_memory_mb"]
        * config["shuffle_input_buffer_percent"]
    )
    need = min(per_red, red_buffer) + _TASK_OVERHEAD_MB
    return config["mapreduce_reduce_memory_mb"] < need


@register_tuner("trace-sim")
class TraceSimulationTuner(Tuner):
    """Instrument one run, replay the trace over many candidates, then
    validate the best predictions with real runs."""

    name = "trace-sim"
    category = "simulation-based"

    def __init__(self, n_model_samples: int = 1500, n_validate: int = 3):
        self.n_model_samples = n_model_samples
        self.n_validate = n_validate

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        base_config = session.default_config()
        base = session.evaluate(base_config, tag="trace-capture")
        if not base.ok:
            return None  # cannot build a trace from a failed run
        hot_set = session.workload.signature().get("hot_set_mb", 1024.0)

        cluster = _cluster_of(session.system)
        sessions = session.workload.signature().get("sessions", 8.0)
        trace_shuffle_mb = base.metric("shuffle_mb", 0.0)

        scored: List[Tuple[float, Configuration]] = []
        for _ in range(self.n_model_samples):
            candidate = session.space.sample_configuration(session.rng)
            # The documented sizing rules any modeler applies before
            # proposing a configuration.
            if session.system.kind == "dbms":
                from repro.tuners.cost_model import dbms_memory_infeasible

                workers = min(
                    int(candidate["max_parallel_workers"]), cluster.total_cores
                )
                if dbms_memory_infeasible(
                    candidate, cluster.min_node.memory_mb, sessions, workers
                ):
                    continue
            elif session.system.kind == "hadoop":
                if hadoop_container_infeasible(candidate, trace_shuffle_mb):
                    continue
            predicted = trace_replay_predict(
                session.system.kind, base_config, base, candidate, hot_set
            )
            scored.append((predicted, candidate))
            session.predict(candidate, predicted, tag="trace-replay")
        scored.sort(key=lambda item: item[0])
        for predicted, candidate in scored[: self.n_validate]:
            if session.evaluate_if_budget(candidate, tag="validate") is None:
                break
        return None


# ---------------------------------------------------------------------------
# ADDM
# ---------------------------------------------------------------------------

#: component extractor: measurement -> seconds attributed to the finding
_Extractor = Callable[[Measurement], float]
#: remedy: (config values, severity) -> knob overrides
_Remedy = Callable[[Dict, float], Dict]


def _dbms_findings() -> List[Tuple[str, _Extractor, _Remedy]]:
    def n_tx(meas: Measurement) -> float:
        return meas.runtime_s * meas.metric("tps")

    return [
        (
            "buffer-pool-misses",
            lambda meas: meas.metric("io_time_s") * meas.metric("cache_miss_ratio"),
            lambda v, s: {"buffer_pool_mb": v["buffer_pool_mb"] * 2},
        ),
        (
            "operator-spills",
            lambda meas: meas.metric("spill_mb") / 100.0,
            lambda v, s: {"work_mem_mb": v["work_mem_mb"] * 4},
        ),
        (
            "log-commit-waits",
            lambda meas: meas.metric("commit_wait_s") * meas.runtime_s * meas.metric("tps"),
            lambda v, s: {"log_flush_policy": "batch", "commit_delay_us": 2000},
        ),
        (
            "lock-contention",
            lambda meas: meas.metric("lock_wait_s") * meas.runtime_s * meas.metric("tps"),
            lambda v, s: {"deadlock_timeout_ms": max(100, v["deadlock_timeout_ms"] // 4)},
        ),
        (
            "checkpoint-pressure",
            lambda meas: meas.metric("checkpoint_overhead_s"),
            lambda v, s: {"checkpoint_interval_s": min(3600, v["checkpoint_interval_s"] * 2)},
        ),
        (
            "cpu-saturation",
            lambda meas: meas.metric("cpu_time_s"),
            lambda v, s: {"max_parallel_workers": min(64, v["max_parallel_workers"] * 2)},
        ),
    ]


def _hadoop_findings() -> List[Tuple[str, _Extractor, _Remedy]]:
    return [
        (
            "reduce-underparallelized",
            lambda meas: meas.metric("reduce_phase_s"),
            lambda v, s: {"mapreduce_job_reduces": min(256, v["mapreduce_job_reduces"] * 4)},
        ),
        (
            "shuffle-volume",
            lambda meas: meas.metric("shuffle_phase_s"),
            lambda v, s: {"map_output_compress": True, "combiner_enabled": True},
        ),
        (
            "map-spills",
            lambda meas: meas.metric("spilled_mb") / 200.0,
            lambda v, s: {
                "io_sort_mb": min(1024, v["io_sort_mb"] * 2),
                "mapreduce_map_memory_mb": min(8192, v["mapreduce_map_memory_mb"] * 2),
            },
        ),
        (
            "jvm-churn",
            lambda meas: meas.metric("jvm_startup_s"),
            lambda v, s: {"jvm_reuse": True},
        ),
    ]


def _spark_findings() -> List[Tuple[str, _Extractor, _Remedy]]:
    return [
        (
            "gc-pressure",
            lambda meas: meas.metric("gc_time_s"),
            lambda v, s: {"executor_memory_mb": min(14000, v["executor_memory_mb"] * 2)},
        ),
        (
            "execution-spills",
            lambda meas: meas.metric("spilled_mb") / 200.0,
            lambda v, s: {
                "memory_fraction": min(0.9, v["memory_fraction"] + 0.15),
                "shuffle_partitions": min(2000, v["shuffle_partitions"] * 2),
            },
        ),
        (
            "task-launch-overhead",
            lambda meas: meas.metric("task_launch_s"),
            lambda v, s: {"shuffle_partitions": max(8, v["shuffle_partitions"] // 4)},
        ),
        (
            "cache-misses",
            lambda meas: meas.metric("recomputed_mb") / 500.0,
            lambda v, s: {
                "storage_fraction": min(0.9, v["storage_fraction"] + 0.2),
                "executor_memory_mb": min(14000, v["executor_memory_mb"] * 2),
            },
        ),
        (
            "serialization-cpu",
            lambda meas: meas.metric("ser_cpu_s"),
            lambda v, s: {"serializer": "kryo"},
        ),
        (
            "under-provisioned",
            lambda meas: meas.metric("waves") * 2.0,
            lambda v, s: {"num_executors": min(64, v["num_executors"] * 2)},
        ),
    ]


_FINDINGS = {
    "dbms": _dbms_findings,
    "hadoop": _hadoop_findings,
    "spark": _spark_findings,
}


@register_tuner("addm")
class AddmDiagnoser(Tuner):
    """Measure → attribute time to findings → remedy the biggest one →
    repeat.  Keeps the best configuration seen; stops early when the
    last remedy regressed twice in a row."""

    name = "addm"
    category = "simulation-based"

    def __init__(self, max_rounds: int = 8):
        self.max_rounds = max_rounds

    def _tune(self, session: TuningSession) -> Optional[Configuration]:
        findings = _FINDINGS.get(session.system.kind)
        if findings is None:
            session.evaluate(session.default_config(), tag="default")
            return None
        catalog = findings()
        validator = SpexValidator(session.space)

        config = session.default_config()
        measurement = session.evaluate(config, tag="addm-0")
        best_config, best_runtime = config, measurement.runtime_s
        regressions = 0
        applied: List[str] = []
        tried: set = set()

        for round_no in range(1, self.max_rounds + 1):
            if not session.can_run() or not measurement.ok:
                break
            ranked = sorted(
                ((extract(measurement), name, remedy) for name, extract, remedy in catalog),
                key=lambda t: -t[0],
            )
            override = None
            for severity, name, remedy in ranked:
                if severity <= 0 or name in tried:
                    continue
                override = remedy(dict(config.to_dict()), severity)
                tried.add(name)
                applied.append(name)
                break
            if override is None:
                break
            values = validator.repair_values({**config.to_dict(), **override})
            new_config = session.space.configuration(values)
            result = session.evaluate_if_budget(new_config, tag=f"addm-{round_no}")
            if result is None:
                break
            if result.ok and result.runtime_s < best_runtime:
                best_config, best_runtime = new_config, result.runtime_s
                regressions = 0
                config, measurement = new_config, result
            else:
                regressions += 1
                if regressions >= 2:
                    break
        session.extras["findings_applied"] = applied
        return best_config
