"""Workload generators for all three systems, in one namespace.

Convenience re-exports: the canonical generators live next to their
simulators (``repro.systems.<system>.workloads``).
"""

from repro.core.workload import StreamPhase, Workload, WorkloadStream
from repro.systems.dbms.workloads import (
    adhoc_query,
    htap_mixed,
    olap_analytics,
    oltp_orders,
)
from repro.systems.dbms.workloads import make_workload_suite as dbms_suite
from repro.systems.hadoop.workloads import (
    adhoc_job,
    grep,
    inverted_index,
    join,
    pagerank,
    terasort,
    wordcount,
)
from repro.systems.hadoop.workloads import make_workload_suite as hadoop_suite
from repro.systems.spark.workloads import (
    adhoc_app,
    spark_kmeans,
    spark_pagerank,
    spark_sort,
    spark_sql_join,
    spark_streaming_batches,
    spark_wordcount,
)
from repro.systems.spark.workloads import make_workload_suite as spark_suite

__all__ = [
    "StreamPhase",
    "Workload",
    "WorkloadStream",
    "adhoc_app",
    "adhoc_job",
    "adhoc_query",
    "dbms_suite",
    "grep",
    "hadoop_suite",
    "htap_mixed",
    "inverted_index",
    "join",
    "olap_analytics",
    "oltp_orders",
    "pagerank",
    "spark_kmeans",
    "spark_pagerank",
    "spark_sort",
    "spark_sql_join",
    "spark_streaming_batches",
    "spark_suite",
    "spark_wordcount",
    "terasort",
    "wordcount",
]
