"""Tests for the analysis utilities."""

import math

import numpy as np
import pytest

from repro.analysis import (
    area_under_curve,
    banner,
    convergence_curve,
    evaluate_predictor,
    forest_importance,
    format_table,
    format_value,
    lasso_importance,
    rank_correlation,
    runs_to_reach,
    speedup_curve,
    sweep_importance,
    top_k_overlap,
)
from repro.core import Budget
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics
from repro.tuners import RandomSearchTuner, cost_model_for


@pytest.fixture(scope="module")
def dbms():
    return DbmsSimulator(Cluster.uniform(4))


@pytest.fixture(scope="module")
def result(dbms):
    return RandomSearchTuner().tune(
        dbms, htap_mixed(0.5), Budget(max_runs=12), np.random.default_rng(0)
    )


class TestRankingMetrics:
    def test_rank_correlation_perfect(self):
        truth = {"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5}
        assert rank_correlation(["a", "b", "c", "d"], truth) == pytest.approx(1.0)

    def test_rank_correlation_reversed(self):
        truth = {"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5}
        assert rank_correlation(["d", "c", "b", "a"], truth) == pytest.approx(-1.0)

    def test_rank_correlation_too_few(self):
        assert rank_correlation(["a"], {"a": 1.0}) == 0.0

    def test_top_k_overlap(self):
        truth = {"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5}
        assert top_k_overlap(["a", "b"], truth, k=2) == 1.0
        assert top_k_overlap(["d", "c"], truth, k=2) == 0.0
        assert top_k_overlap(["a", "c"], truth, k=2) == 0.5

    def test_sweep_importance_finds_designed_knobs(self, dbms):
        scores = sweep_importance(
            dbms, olap_analytics(0.5), levels=3,
            knobs=["buffer_pool_mb", "stats_target"],
        )
        assert scores["buffer_pool_mb"] > 1.1
        assert scores["stats_target"] == pytest.approx(1.0, abs=0.02)

    def test_lasso_importance_returns_all(self, dbms):
        names = lasso_importance(
            dbms, olap_analytics(0.5), n_samples=25,
            rng=np.random.default_rng(0),
        )
        assert sorted(names) == sorted(dbms.config_space.names())

    def test_forest_importance_normalized(self, dbms):
        scores = forest_importance(
            dbms, olap_analytics(0.5), n_samples=25,
            rng=np.random.default_rng(0),
        )
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)


class TestConvergence:
    def test_curve_shapes(self, result):
        curve = convergence_curve(result)
        assert len(curve) == result.n_real_runs
        bests = [b for _, b in curve]
        assert all(x >= y for x, y in zip(bests, bests[1:]))

    def test_speedup_curve_monotone(self, result):
        curve = speedup_curve(result, baseline_runtime_s=100.0)
        speeds = [s for _, s in curve]
        assert all(y >= x for x, y in zip(speeds, speeds[1:]))

    def test_auc_between_extremes(self, result):
        base = 100.0
        auc = area_under_curve(result, base)
        final = speedup_curve(result, base)[-1][1]
        assert 0 < auc <= final

    def test_runs_to_reach(self, result):
        base = result.best_runtime_s * 2
        idx = runs_to_reach(result, base, target_speedup=2.0)
        assert idx >= 1
        assert runs_to_reach(result, base, target_speedup=1e9) == -1


class TestWhatIf:
    def test_cost_model_accuracy_scored(self, dbms):
        model = cost_model_for("dbms")
        wl = htap_mixed(0.5)
        acc = evaluate_predictor(
            dbms, wl,
            lambda cfg: model.predict(wl, cfg, dbms.cluster),
            n_points=15, rng=np.random.default_rng(1),
        )
        assert acc.n_points >= 5
        assert -1.0 <= acc.rank_fidelity <= 1.0
        assert acc.mape >= 0

    def test_broken_predictor_gives_empty(self, dbms):
        acc = evaluate_predictor(
            dbms, htap_mixed(0.5),
            lambda cfg: float("nan") / 0 if True else 0,  # always raises
            n_points=5, rng=np.random.default_rng(1),
        )
        assert acc.n_points == 0
        assert math.isinf(acc.mape)


class TestReport:
    def test_format_value(self):
        assert format_value(float("inf")) == "inf"
        assert format_value(0.1234) == "0.12"
        assert format_value(1234567.0) == "1,234,567"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows same width
        assert "bbbb" in text

    def test_banner(self):
        assert "hello" in banner("hello")
