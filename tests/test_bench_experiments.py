"""Smoke tests for every experiment module (quick modes).

The benchmark suite asserts shapes at full fidelity; these tests only
verify each experiment runs end-to-end, returns a well-formed
ExperimentResult, and exposes the raw data its benchmark consumes.
"""

import pytest

from repro.bench import (
    ExperimentResult,
    run_adhoc,
    run_cloud,
    run_convergence,
    run_hadoop_vs_dbms,
    run_heterogeneity,
    run_ituned_ablation,
    run_misconfig,
    run_ottertune_ablation,
    run_ranking,
    run_spark_significance,
    run_table1,
    run_table2,
    run_whatif,
)


def _check(result: ExperimentResult, experiment_id: str) -> None:
    assert result.experiment_id == experiment_id
    assert result.headers and result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.to_text()
    assert experiment_id in text
    assert result.headers[0] in text


class TestExperimentSmoke:
    def test_e1(self):
        result = run_table1(budget_runs=8, quick=True, seed=0)
        _check(result, "E1")
        assert set(result.raw["mean_speedup_by_category"]) == {
            "rule-based", "cost-modeling", "simulation-based",
            "experiment-driven", "machine-learning", "adaptive",
        }

    def test_e2(self):
        result = run_table2(budget_runs=10, quick=True, seed=0)
        _check(result, "E2")
        assert len(result.rows) == 11

    def test_e3(self):
        result = run_misconfig(n_samples=20, quick=True, seed=0)
        _check(result, "E3")

    def test_e4(self):
        result = run_hadoop_vs_dbms(budget_runs=8, quick=True, seed=0)
        _check(result, "E4")

    def test_e5(self):
        result = run_spark_significance(quick=True, seed=0)
        _check(result, "E5")
        assert 0 < result.raw["fraction_significant"] < 1

    def test_e6(self):
        result = run_convergence(budget_runs=10, quick=True, seed=0)
        _check(result, "E6")
        assert result.raw["curves"]

    def test_e7(self):
        result = run_heterogeneity(budget_runs=6, quick=True, seed=0)
        _check(result, "E7")
        assert len(result.rows) == 4

    def test_e8(self):
        result = run_adhoc(n_jobs=3, tune_budget=4, quick=True, seed=0)
        _check(result, "E8")
        assert "per-job ituned" in result.raw["totals"]

    def test_e9(self):
        result = run_ranking(quick=True, seed=0)
        _check(result, "E9")
        assert {row[0] for row in result.rows} == {
            "sard-pb", "lasso-path", "forest-impurity", "navigation-kb",
        }

    def test_e10(self):
        result = run_whatif(n_points=8, quick=True, seed=0)
        _check(result, "E10")

    def test_e11(self):
        result = run_cloud(budget_runs=6, quick=True, seed=0)
        _check(result, "E11")
        assert result.raw["cost_optimal_nodes"] in (2, 8)

    def test_e12(self):
        result = run_ituned_ablation(budget_runs=8, quick=True)
        _check(result, "E12")

    def test_e13(self):
        result = run_ottertune_ablation(budget_runs=8, quick=True)
        _check(result, "E13")


class TestExperimentResultApi:
    def test_column_and_row_by(self):
        result = run_misconfig(n_samples=10, quick=True, seed=0)
        assert result.column("system") == ["dbms"]
        assert result.row_by("dbms")[0] == "dbms"
        with pytest.raises(KeyError):
            result.row_by("mainframe")
