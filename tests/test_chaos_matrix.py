"""Robustness matrix: every registered tuner survives 30% chaos.

Each tuner runs against a :class:`~repro.chaos.ChaosSystem` at the
benchmark's 30% fault intensity (transients, bursts, stragglers, hangs,
metric corruption, and a config blackout) under a resilient execution
policy.  The contract: no exception escapes ``tune()``, the run budget
is respected, and the recommendation is a valid configuration.
"""

import math

import numpy as np
import pytest

from repro import Budget, make_tuner, tuner_names
from repro.chaos import ChaosSystem, standard_policies
from repro.exec.resilience import ExecutionPolicy
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics
from repro.tuners import build_repository

_BUDGET = Budget(max_runs=10)
_INTENSITY = 0.3

#: Generous deadline relative to the clean default runtime (~40s); only
#: hangs and extreme stragglers are killed.
_POLICY = ExecutionPolicy(
    deadline_s=800.0,
    max_retries=1,
    backoff_base_s=0.5,
    breaker_threshold=3,
    failure_policy="penalize",
)


def _system():
    return DbmsSimulator(Cluster.uniform(4))


def _instantiate(name: str, system):
    if name == "ottertune":
        repo = build_repository(
            system, [olap_analytics(0.3)], n_samples=12,
            rng=np.random.default_rng(7),
        )
        return make_tuner(name, repository=repo)
    if name == "nn-tuner":
        return make_tuner(name, epochs=60)
    if name == "ensemble":
        return make_tuner(name, mlp_epochs=60)
    if name in ("cost-model", "trace-sim"):
        return make_tuner(name, n_model_samples=150)
    if name == "genetic":
        return make_tuner(name, population=4, elite=1)
    return make_tuner(name)


@pytest.mark.parametrize("tuner_name", tuner_names())
def test_tuner_survives_chaos(tuner_name):
    system = _system()
    workload = htap_mixed(0.3)
    tuner = _instantiate(tuner_name, system)
    chaos = ChaosSystem(
        system, standard_policies(_INTENSITY), seed=1234
    )

    result = tuner.tune(
        chaos, workload, _BUDGET,
        rng=np.random.default_rng(3), execution=_POLICY,
    )

    assert result.n_real_runs <= _BUDGET.max_runs
    # The recommendation decodes as a valid configuration of the space.
    system.config_space.configuration(result.best_config.to_dict())
    # The reported incumbent is never an unbounded (hung) runtime.
    finite = [
        o for o in result.history.successful()
        if o.workload in ("", workload.name) and math.isfinite(o.runtime_s)
    ]
    if finite:
        assert math.isfinite(result.best_runtime_s)
    # Resilience accounting made it into the result.
    resilience = result.extras["resilience"]
    assert resilience["real_runs"] == result.n_real_runs
    assert math.isfinite(resilience["wasted_time_s"])
