"""Chaos layer: fault policies, the chaos wrapper, and injection
determinism (serial and batched execution must inject identically)."""

import math

import numpy as np
import pytest

from repro.chaos import (
    CONFIG_FAULT_KEY,
    INJECTED_FAULT_KEY,
    BurstyFaults,
    ChaosSystem,
    ConfigBlackout,
    Hangs,
    MetricCorruption,
    Stragglers,
    TransientFaults,
    standard_policies,
)
from repro.core import InstrumentedSystem
from repro.core.faults import FlakySystem
from repro.exceptions import FaultInjected
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed


@pytest.fixture(scope="module")
def workload():
    return htap_mixed(0.3)


def _inner():
    return DbmsSimulator(Cluster.uniform(4))


def _configs(system, n, seed=11):
    rng = np.random.default_rng(seed)
    return [system.config_space.sample_configuration(rng) for _ in range(n)]


class TestPolicies:
    def test_rate_validation(self):
        for cls in (TransientFaults, BurstyFaults, Stragglers, Hangs,
                    MetricCorruption):
            with pytest.raises(ValueError):
                cls(rate=1.0)

    def test_transient_rate_and_marker(self, workload):
        chaos = ChaosSystem(_inner(), [TransientFaults(0.3)], seed=1)
        config = chaos.inner.default_configuration()
        failures = [
            m for m in (chaos.run(workload, config) for _ in range(200))
            if m.failed
        ]
        assert 30 <= len(failures) <= 90
        for m in failures:
            assert m.metric(INJECTED_FAULT_KEY) == 1.0
            assert m.metric("elapsed_before_failure_s") > 0

    def test_bursty_failures_cluster(self, workload):
        chaos = ChaosSystem(
            _inner(), [BurstyFaults(0.25, burst_len=4.0)], seed=3
        )
        config = chaos.inner.default_configuration()
        fails = [chaos.run(workload, config).failed for _ in range(400)]
        rate = sum(fails) / len(fails)
        assert 0.1 <= rate <= 0.45
        # Mean burst length should reflect the Markov stay-probability —
        # clearly longer than the ~1.3 a Bernoulli process would give.
        bursts, current = [], 0
        for f in fails:
            if f:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        assert bursts and sum(bursts) / len(bursts) >= 2.0

    def test_straggler_slows_but_succeeds(self, workload):
        chaos = ChaosSystem(
            _inner(), [Stragglers(0.99, max_factor=20.0)], seed=4
        )
        config = chaos.inner.default_configuration()
        clean = chaos.inner.run(workload, config)
        m = chaos.run(workload, config)
        assert m.ok
        factor = m.metric("straggler_factor")
        assert 1.0 < factor <= 20.0
        assert m.runtime_s == pytest.approx(clean.runtime_s * factor)

    def test_hang_reports_success_with_unbounded_runtime(self, workload):
        chaos = ChaosSystem(_inner(), [Hangs(0.99)], seed=5)
        m = chaos.run(workload, chaos.inner.default_configuration())
        assert m.ok
        assert math.isinf(m.runtime_s)
        assert m.metric("hung") == 1.0

    def test_metric_corruption_touches_metrics_only(self, workload):
        chaos = ChaosSystem(
            _inner(),
            [MetricCorruption(0.99, nan_fraction=0.5, drop_fraction=0.5)],
            seed=6,
        )
        config = chaos.inner.default_configuration()
        clean = chaos.inner.run(workload, config)
        m = chaos.run(workload, config)
        assert m.ok
        assert m.runtime_s == pytest.approx(clean.runtime_s)
        assert len(m.metrics) < len(clean.metrics) or any(
            math.isnan(float(v)) for v in m.metrics.values()
        )

    def test_blackout_is_deterministic_and_config_correlated(self, workload):
        system = _inner()
        space = system.config_space
        rng = np.random.default_rng(0)
        # Blackout knobs the *inner* simulator tolerates when maxed, so
        # the injected failure is attributable to the blackout policy.
        knobs = ("temp_buffers_mb", "wal_buffers_mb")
        policy = ConfigBlackout(knobs=knobs, threshold=0.85)
        chaos = ChaosSystem(system, [policy], seed=7)
        unit = np.full(space.dimension, 0.5)
        for k in knobs:
            unit[space.names().index(k)] = 0.95
        hot = space.from_array_feasible(unit, rng)
        cold = space.from_array_feasible(
            np.full(space.dimension, 0.5), rng
        )
        if not policy.blacked_out(hot) or not system.run(workload, hot).ok:
            pytest.skip("no clean configuration inside the blackout region")
        for _ in range(3):
            m = chaos.run(workload, hot)
            assert m.failed
            assert m.metric(CONFIG_FAULT_KEY) == 1.0
            assert m.metric(INJECTED_FAULT_KEY) == 0.0
        assert chaos.run(workload, cold).ok

    def test_standard_policies_intensity_zero_is_empty(self):
        assert standard_policies(0.0) == []
        assert len(standard_policies(0.3)) == 6
        with pytest.raises(ValueError):
            standard_policies(-0.1)


class TestChaosSystem:
    def test_serial_and_batched_injection_identical(self, workload):
        """Regression (deterministic per-index injection): a batched run
        must inject the exact fault sequence a serial replay does."""
        configs = _configs(_inner(), 24)
        serial = ChaosSystem(_inner(), standard_policies(0.3), seed=42)
        batched = ChaosSystem(_inner(), standard_policies(0.3), seed=42)

        serial_ms = [serial.run(workload, c) for c in configs]
        batched_ms = []
        for start in range(0, len(configs), 6):
            batched_ms.extend(
                batched.run_batch(workload, configs[start:start + 6])
            )

        assert serial.fault_digest() == batched.fault_digest()
        assert serial.fault_log == batched.fault_log
        for a, b in zip(serial_ms, batched_ms):
            assert a.failed == b.failed
            assert repr(a.runtime_s) == repr(b.runtime_s)
            assert dict(a.metrics) == pytest.approx(dict(b.metrics), nan_ok=True)

    def test_parallel_batch_injects_identically(self, workload):
        """Injection parity survives a concurrent inner batch."""
        from repro.exec.runner import ParallelRunner

        configs = _configs(_inner(), 12)
        serial = ChaosSystem(_inner(), standard_policies(0.3), seed=9)
        serial_ms = [serial.run(workload, c) for c in configs]

        runner = ParallelRunner(jobs=2, mode="thread")
        try:
            inner = InstrumentedSystem(_inner(), runner=runner)
            parallel = ChaosSystem(inner, standard_policies(0.3), seed=9)
            parallel_ms = parallel.run_batch(workload, configs)
        finally:
            runner.close()

        assert serial.fault_digest() == parallel.fault_digest()
        for a, b in zip(serial_ms, parallel_ms):
            assert a.failed == b.failed
            assert repr(a.runtime_s) == repr(b.runtime_s)

    def test_injection_independent_of_other_indices(self, workload):
        """Fault decisions are keyed by index, not by draw order."""
        config = _inner().default_configuration()
        a = ChaosSystem(_inner(), [TransientFaults(0.4)], seed=17)
        b = ChaosSystem(_inner(), [TransientFaults(0.4)], seed=17)
        a_fails = [a.run(workload, config).failed for _ in range(20)]
        # b jumps straight to index 10 by batching differently.
        b_fails = [m.failed for m in b.run_batch(workload, [config] * 20)]
        assert a_fails == b_fails

    def test_raise_faults_mode(self, workload):
        chaos = ChaosSystem(
            _inner(), [TransientFaults(0.99)], seed=8, raise_faults=True
        )
        config = chaos.inner.default_configuration()
        with pytest.raises(FaultInjected) as err:
            chaos.run(workload, config)
        assert err.value.measurement is not None
        assert err.value.measurement.failed
        # Batches stay atomic: no exception, failures returned in place.
        ms = chaos.run_batch(workload, [config, config])
        assert all(m.failed for m in ms)

    def test_reset_faults(self, workload):
        chaos = ChaosSystem(_inner(), [TransientFaults(0.99)], seed=10)
        chaos.run(workload, chaos.inner.default_configuration())
        assert chaos.fault_log
        chaos.reset_faults()
        assert chaos.fault_log == []
        assert chaos.injected_failures == 0


class TestFlakySystemShim:
    def test_is_a_chaos_system(self):
        flaky = FlakySystem(_inner(), failure_rate=0.3)
        assert isinstance(flaky, ChaosSystem)
        assert flaky.failure_rate == 0.3

    def test_serial_batch_parity(self, workload):
        configs = _configs(_inner(), 10)
        rng = np.random.default_rng(5)
        serial = FlakySystem(_inner(), failure_rate=0.4, rng=rng)
        batched = FlakySystem(
            _inner(), failure_rate=0.4, rng=np.random.default_rng(5)
        )
        serial_fails = [serial.run(workload, c).failed for c in configs]
        batched_fails = [
            m.failed for m in batched.run_batch(workload, configs)
        ]
        assert serial_fails == batched_fails
