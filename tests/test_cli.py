"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fragment in ("rule-based", "ituned", "ottertune", "dbms", "E1", "E13"):
            assert fragment in out


class TestTune:
    def test_tune_session(self, capsys):
        rc = main([
            "tune", "--system", "dbms", "--workload", "olap",
            "--tuner", "rule-based", "--runs", "2", "--show-config",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_workload(self, capsys):
        rc = main([
            "tune", "--system", "dbms", "--workload", "nope", "--tuner", "default",
        ])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_cheap_tuner_on_spark(self, capsys):
        rc = main([
            "tune", "--system", "spark", "--workload", "sort",
            "--tuner", "cost-model", "--runs", "4",
        ])
        assert rc == 0
        assert "best" in capsys.readouterr().out


class TestTuneKnowledgeBase:
    def test_save_then_warm_start(self, capsys, tmp_path):
        kb_path = str(tmp_path / "tuning.kb")
        rc = main([
            "tune", "--system", "dbms", "--workload", "olap",
            "--tuner", "ituned", "--runs", "8", "--seed", "1",
            "--save", kb_path,
        ])
        assert rc == 0
        assert "saved" in capsys.readouterr().out

        rc = main([
            "tune", "--system", "dbms", "--workload", "htap",
            "--tuner", "ituned", "--runs", "8", "--seed", "1",
            "--warm-start", kb_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "warm start" in out
        assert "prior observations" in out

    def test_warm_start_with_empty_kb_still_tunes(self, capsys, tmp_path):
        kb_path = str(tmp_path / "empty.kb")
        rc = main([
            "tune", "--system", "dbms", "--workload", "olap",
            "--tuner", "rule-based", "--runs", "2",
            "--warm-start", kb_path,
        ])
        assert rc == 0
        assert "best" in capsys.readouterr().out


class TestExperiment:
    def test_quick_experiment(self, capsys):
        assert main(["experiment", "E3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[E3]" in out and "worst/best" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_case_insensitive_id(self, capsys):
        assert main(["experiment", "e3", "--quick"]) == 0


class TestSweep:
    def test_sweep_prints_grid(self, capsys):
        rc = main([
            "sweep", "--system", "hadoop", "--workload", "terasort",
            "--knob", "mapreduce_job_reduces", "--levels", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("s") > 3  # runtimes printed

    def test_unknown_knob(self, capsys):
        rc = main([
            "sweep", "--system", "dbms", "--workload", "olap", "--knob", "bogus",
        ])
        assert rc == 2
        assert "unknown knob" in capsys.readouterr().err


class TestTuneMultiFidelity:
    def test_fidelity_flags_enable_screening(self, capsys):
        rc = main([
            "tune", "--system", "dbms", "--workload", "htap",
            "--tuner", "cem", "--runs", "16", "--seed", "3",
            "--fidelity-rungs", "2", "--fidelity-min", "0.25",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "multi-fidelity: ladder 0.25/1" in out
        assert "screening runs" in out
        assert "charged" in out

    def test_fidelity_defaults_off(self, capsys):
        rc = main([
            "tune", "--system", "dbms", "--workload", "htap",
            "--tuner", "cem", "--runs", "8", "--seed", "3",
        ])
        assert rc == 0
        assert "multi-fidelity" not in capsys.readouterr().out

    def test_fidelity_rejected_for_non_search_tuner(self, capsys):
        rc = main([
            "tune", "--system", "dbms", "--workload", "htap",
            "--tuner", "rule-based", "--runs", "4",
            "--fidelity-rungs", "2",
        ])
        assert rc == 2
        assert "multi-fidelity" in capsys.readouterr().err
