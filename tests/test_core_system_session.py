"""Tests for system wrappers, sessions, budgets, and the tuner template."""

import math

import numpy as np
import pytest

from repro.core import (
    Budget,
    InstrumentedSystem,
    Measurement,
    SubspaceSystem,
    Tuner,
)
from repro.core.session import TuningSession
from repro.exceptions import BudgetExhausted, WorkloadError
from repro.systems.dbms import DbmsSimulator, olap_analytics
from repro.systems.hadoop import wordcount


@pytest.fixture
def system():
    return DbmsSimulator()


@pytest.fixture
def workload():
    return olap_analytics(scale=0.2)


class TestInstrumentedSystem:
    def test_counts_runs(self, system, workload):
        wrapped = InstrumentedSystem(system)
        config = system.default_configuration()
        wrapped.run(workload, config)
        wrapped.run(workload, config)
        assert wrapped.run_count == 2
        assert wrapped.total_measured_s > 0

    def test_noise_changes_runtime_but_not_failure(self, system, workload):
        config = system.default_configuration()
        clean = system.run(workload, config).runtime_s
        noisy = InstrumentedSystem(
            system, noise=0.2, rng=np.random.default_rng(0)
        ).run(workload, config)
        assert noisy.ok
        assert noisy.runtime_s != pytest.approx(clean)
        assert noisy.runtime_s == pytest.approx(clean, rel=1.0)

    def test_zero_noise_is_identity(self, system, workload):
        config = system.default_configuration()
        assert InstrumentedSystem(system).run(workload, config).runtime_s == (
            pytest.approx(system.run(workload, config).runtime_s)
        )

    def test_cache_skips_reruns(self, system, workload):
        wrapped = InstrumentedSystem(system, cache=True)
        config = system.default_configuration()
        a = wrapped.run(workload, config)
        b = wrapped.run(workload, config)
        assert a is b
        assert wrapped.run_count == 1

    def test_rejects_wrong_workload_kind(self, system):
        wrapped = InstrumentedSystem(system)
        with pytest.raises(WorkloadError):
            wrapped.run(wordcount(1.0), system.default_configuration())

    def test_negative_noise_rejected(self, system):
        with pytest.raises(ValueError):
            InstrumentedSystem(system, noise=-0.1)


class TestSubspaceSystem:
    def test_space_is_reduced(self, system):
        sub = SubspaceSystem(system, ["buffer_pool_mb", "work_mem_mb"])
        assert set(sub.config_space.names()) == {"buffer_pool_mb", "work_mem_mb"}

    def test_expansion_fills_defaults(self, system, workload):
        sub = SubspaceSystem(system, ["buffer_pool_mb"])
        config = sub.config_space.partial({"buffer_pool_mb": 2048})
        full = sub.expand(config)
        assert full["buffer_pool_mb"] == 2048
        assert full["work_mem_mb"] == system.default_configuration()["work_mem_mb"]

    def test_run_equals_expanded_run(self, system, workload):
        sub = SubspaceSystem(system, ["buffer_pool_mb"])
        config = sub.config_space.partial({"buffer_pool_mb": 2048})
        direct = system.run(workload, sub.expand(config)).runtime_s
        assert sub.run(workload, config).runtime_s == pytest.approx(direct)

    def test_empty_subspace_rejected(self, system):
        with pytest.raises(ValueError):
            SubspaceSystem(system, ["not-a-knob"])


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_runs=-1)
        with pytest.raises(ValueError):
            Budget(max_runs=5, max_experiment_time_s=0)

    def test_session_enforces_run_budget(self, system, workload):
        session = TuningSession(
            system, workload, Budget(max_runs=2), np.random.default_rng(0)
        )
        config = system.default_configuration()
        session.evaluate(config)
        session.evaluate(config)
        assert not session.can_run()
        with pytest.raises(BudgetExhausted):
            session.evaluate(config)

    def test_session_enforces_time_budget(self, system, workload):
        base = system.run(workload, system.default_configuration()).runtime_s
        session = TuningSession(
            system,
            workload,
            Budget(max_runs=100, max_experiment_time_s=base * 1.5),
            np.random.default_rng(0),
        )
        config = system.default_configuration()
        session.evaluate(config)
        session.evaluate(config)
        assert not session.can_run()

    def test_evaluate_if_budget_returns_none(self, system, workload):
        session = TuningSession(
            system, workload, Budget(max_runs=0), np.random.default_rng(0)
        )
        assert session.evaluate_if_budget(system.default_configuration()) is None

    def test_predictions_are_free(self, system, workload):
        session = TuningSession(
            system, workload, Budget(max_runs=1), np.random.default_rng(0)
        )
        for i in range(50):
            session.predict(system.default_configuration(), float(i))
        assert session.remaining_runs == 1
        assert len(session.history) == 50


class _FixedTuner(Tuner):
    """Evaluates default then one override; recommends the override."""

    name = "fixed"
    category = "rule-based"

    def __init__(self, overrides):
        self.overrides = overrides

    def _tune(self, session):
        session.evaluate(session.default_config())
        config = session.space.partial(self.overrides)
        session.evaluate(config)
        return config


class _GreedyTuner(Tuner):
    """Recommends a config it never ran (template must fall back)."""

    name = "greedy"
    category = "rule-based"

    def _tune(self, session):
        session.evaluate(session.default_config())
        return session.space.partial({"buffer_pool_mb": 4096})


class TestTunerTemplate:
    def test_result_fields(self, system, workload):
        result = _FixedTuner({"buffer_pool_mb": 4096}).tune(
            system, workload, Budget(max_runs=5)
        )
        assert result.n_real_runs == 2
        assert result.best_config["buffer_pool_mb"] == 4096
        assert math.isfinite(result.best_runtime_s)
        assert result.tuner_name == "fixed"

    def test_unmeasured_recommendation_falls_back(self, system, workload):
        result = _GreedyTuner().tune(system, workload, Budget(max_runs=5))
        # The recommendation was never measured, so the template reverts
        # to the measured best (the default).
        assert result.best_config == system.default_configuration()

    def test_speedup_over(self, system, workload):
        result = _FixedTuner({"buffer_pool_mb": 4096}).tune(
            system, workload, Budget(max_runs=5)
        )
        assert result.speedup_over(result.best_runtime_s * 2) == pytest.approx(2.0)

    def test_zero_budget_recommends_default(self, system, workload):
        result = _FixedTuner({"buffer_pool_mb": 4096}).tune(
            system, workload, Budget(max_runs=0)
        )
        assert result.best_config == system.default_configuration()
        assert result.n_real_runs == 0
