"""Behavioural tests for the DBMS simulator.

These pin the response-surface features the tuning experiments rely on:
diminishing returns, spill cliffs, U-shaped optima, failure regions,
planner effects, and determinism.
"""

import math

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.systems.cluster import Cluster, NodeSpec
from repro.systems.dbms import (
    DBMS_TUNING_KNOBS,
    DbmsSimulator,
    DbmsWorkload,
    GROUND_TRUTH_IMPACT,
    QuerySpec,
    ScanSpec,
    TableSpec,
    TransactionSpec,
    adhoc_query,
    build_screening_space,
    htap_mixed,
    olap_analytics,
    oltp_orders,
)


@pytest.fixture(scope="module")
def sim():
    return DbmsSimulator()


@pytest.fixture(scope="module")
def space(sim):
    return sim.config_space


@pytest.fixture(scope="module")
def olap():
    return olap_analytics()


@pytest.fixture(scope="module")
def oltp():
    return oltp_orders()


def runtime(sim, wl, **overrides):
    return sim.run(wl, sim.config_space.partial(overrides)).runtime_s


class TestWorkloadModel:
    def test_signature_keys_stable(self, olap, oltp):
        assert set(olap.signature()) == set(oltp.signature())

    def test_tables_validated(self):
        with pytest.raises(ValueError):
            TableSpec("t", pages=0, rows=1)
        with pytest.raises(ValueError):
            TableSpec("t", pages=1, rows=1, hot_fraction=0)

    def test_scan_spec_validated(self):
        with pytest.raises(ValueError):
            ScanSpec("t", selectivity=0.0)

    def test_unknown_table_rejected(self):
        t = TableSpec("a", pages=10, rows=100)
        q = QuerySpec("q", scans=(ScanSpec("missing"),))
        with pytest.raises(WorkloadError):
            DbmsWorkload("w", tables=[t], queries=[q])

    def test_transactions_need_count(self):
        t = TableSpec("a", pages=10, rows=100)
        with pytest.raises(WorkloadError):
            DbmsWorkload(
                "w", tables=[t], transactions=[TransactionSpec("tx")], n_transactions=0
            )

    def test_adhoc_seeded(self):
        assert adhoc_query(5).signature() == adhoc_query(5).signature()
        assert adhoc_query(5).signature() != adhoc_query(6).signature()


class TestEngineBehaviour:
    def test_deterministic(self, sim, olap, space):
        config = space.default_configuration()
        a = sim.run(olap, config)
        b = sim.run(olap, config)
        assert a.runtime_s == b.runtime_s
        assert dict(a.metrics) == dict(b.metrics)

    def test_metrics_complete(self, sim, olap, space):
        m = sim.run(olap, space.default_configuration())
        for name in sim.metric_names:
            assert name in m.metrics

    def test_buffer_pool_diminishing_returns(self, sim, olap):
        r = [runtime(sim, olap, buffer_pool_mb=b) for b in (64, 512, 4096, 12288)]
        assert r[0] > r[1] > r[2] > r[3]
        # Diminishing: the first 8x helps more than the last 3x.
        assert (r[0] - r[2]) > (r[2] - r[3]) * 2

    def test_buffer_pool_hit_metric_tracks(self, sim, olap, space):
        low = sim.run(olap, space.partial({"buffer_pool_mb": 64}))
        high = sim.run(olap, space.partial({"buffer_pool_mb": 8192}))
        assert high.metric("buffer_hit_ratio") > low.metric("buffer_hit_ratio")

    def test_work_mem_spill_cliff(self, sim, olap, space):
        small = sim.run(olap, space.partial({"work_mem_mb": 1}))
        large = sim.run(olap, space.partial({"work_mem_mb": 512}))
        assert small.metric("spill_mb") > large.metric("spill_mb")
        assert small.runtime_s > large.runtime_s

    def test_parallel_workers_amdahl(self, sim, olap):
        r1 = runtime(sim, olap, max_parallel_workers=1)
        r8 = runtime(sim, olap, max_parallel_workers=8)
        r64 = runtime(sim, olap, max_parallel_workers=64)
        assert r1 > r8
        assert abs(r8 - r64) < (r1 - r8)  # saturation

    def test_oom_failure_region(self, sim, olap, space):
        config = space.partial({
            "work_mem_mb": 4096,
            "hash_mem_multiplier": 8,
            "max_connections": 1000,
        })
        m = sim.run(olap, config)
        assert m.failed and math.isinf(m.runtime_s)
        assert m.metric("elapsed_before_failure_s") > 0

    def test_deadlock_timeout_u_shape(self, sim, oltp):
        low = runtime(sim, oltp, deadlock_timeout_ms=10)
        mid = runtime(sim, oltp, deadlock_timeout_ms=200)
        high = runtime(sim, oltp, deadlock_timeout_ms=10000)
        assert mid < low
        assert mid < high

    def test_checkpoint_interval_u_shape(self, sim, oltp):
        short = runtime(sim, oltp, checkpoint_interval_s=30)
        mid = runtime(sim, oltp, checkpoint_interval_s=600)
        long = runtime(sim, oltp, checkpoint_interval_s=3600)
        assert mid < short
        assert mid < long

    def test_flush_policy_ordering(self, sim, oltp):
        commit = runtime(sim, oltp, log_flush_policy="commit")
        batch = runtime(sim, oltp, log_flush_policy="batch")
        async_ = runtime(sim, oltp, log_flush_policy="async")
        assert async_ < batch < commit

    def test_compression_tradeoff_depends_on_cpu(self, olap):
        fast_cpu = DbmsSimulator(Cluster.uniform(1, NodeSpec(cpu_speed=2.0, disk_read_mbps=80)))
        slow_cpu = DbmsSimulator(Cluster.uniform(1, NodeSpec(cpu_speed=0.3, disk_read_mbps=2000, disk_write_mbps=1500)))
        def gain(sim):
            space = sim.config_space
            off = sim.run(olap, space.partial({"compression": False})).runtime_s
            on = sim.run(olap, space.partial({"compression": True, "compression_algo": "zlib"})).runtime_s
            return off / on
        # Compression pays on slow disks + fast CPU, not the reverse.
        assert gain(fast_cpu) > gain(slow_cpu)

    def test_random_page_cost_affects_plan_choice(self, sim, space):
        table = TableSpec("t", pages=50_000, rows=5_000_000, hot_fraction=0.1)
        query = QuerySpec("q", scans=(ScanSpec("t", selectivity=0.2, index_available=True),))
        wl = DbmsWorkload("plans", tables=[table], queries=[query], sessions=2)
        cheap_random = sim.run(wl, space.partial({"random_page_cost": 1.0}))
        expensive_random = sim.run(wl, space.partial({"random_page_cost": 10.0}))
        assert cheap_random.metric("index_scans") >= 1
        assert expensive_random.metric("seq_scans") >= 1

    def test_inert_knobs_are_inert(self, sim, olap, space):
        base = sim.run(olap, space.default_configuration()).runtime_s
        for knob in ("stats_target", "geqo_threshold", "tcp_keepalive_s"):
            param = space[knob]
            for value in param.grid(3):
                r = sim.run(olap, space.partial({knob: value})).runtime_s
                assert r == pytest.approx(base, rel=0.01), knob

    def test_cluster_scaling_speeds_up_scans(self, olap):
        one = DbmsSimulator(Cluster.uniform(1))
        eight = DbmsSimulator(Cluster.uniform(8))
        # Use an IO-bound config so the node count matters.
        config = {"buffer_pool_mb": 64, "max_parallel_workers": 1}
        r1 = one.run(olap, one.config_space.partial(config)).runtime_s
        r8 = eight.run(olap, eight.config_space.partial(config)).runtime_s
        assert r8 < r1

    def test_oltp_tps_positive(self, sim, oltp, space):
        m = sim.run(oltp, space.default_configuration())
        assert m.metric("tps") > 0
        assert m.metric("wal_mb") > 0

    def test_cost_units_scale_with_cluster(self, olap):
        small = DbmsSimulator(Cluster.uniform(1))
        big = DbmsSimulator(Cluster.uniform(8))
        cs = small.run(olap, small.config_space.default_configuration())
        cb = big.run(olap, big.config_space.default_configuration())
        assert cb.cost_units / cb.runtime_s > cs.cost_units / cs.runtime_s


class TestKnobCatalog:
    def test_ground_truth_covers_catalog(self, space):
        assert set(GROUND_TRUTH_IMPACT) == set(space.names())

    def test_tuning_knobs_subset(self, space):
        assert set(DBMS_TUNING_KNOBS) <= set(space.names())
        assert len(DBMS_TUNING_KNOBS) >= 10

    def test_default_is_feasible(self, space):
        space.default_configuration()  # must not raise

    def test_memory_constraint_active(self, space):
        from repro.exceptions import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            space.partial({"buffer_pool_mb": space["buffer_pool_mb"].high,
                           "wal_buffers_mb": 1024, "temp_buffers_mb": 1024})

    def test_screening_space_is_conservative(self):
        screening = build_screening_space(16384)
        assert screening["work_mem_mb"].high < 4096
        assert set(screening.names()) == set(DBMS_TUNING_KNOBS)

    def test_screening_values_valid_in_full_space(self, space):
        screening = build_screening_space(16384)
        rng = np.random.default_rng(0)
        for _ in range(20):
            values = {p.name: p.sample(rng) for p in screening.parameters()}
            for name, value in values.items():
                space[name].validate(value)
