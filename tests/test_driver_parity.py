"""Driver execution parity: every ask/tell tuner must observe the exact
same history — byte-identical digests — whether its proposals execute
serially, through a parallel runner, or through the evaluation cache,
and whether or not a transient chaos layer is injecting faults.

This is the acceptance contract of the SearchDriver refactor: batching,
caching, and fault injection are execution concerns the strategies never
see, so they cannot change what a search observes.
"""

import numpy as np
import pytest

from repro.bench.harness import standard_cluster
from repro.chaos import ChaosSystem
from repro.chaos.policies import TransientFaults
from repro.core import Budget, InstrumentedSystem
from repro.exec import EvaluationCache, ParallelRunner
from repro.systems.dbms import DbmsSimulator, htap_mixed
from repro import make_tuner
from repro.tuners.ml.ottertune import build_repository

_BUDGET = Budget(max_runs=14)
_NOISE = 0.05
_TUNER_SEED = 7
_NOISE_SEED = 999
_CHAOS_SEED = 4242

_REPO = None


def _repository():
    global _REPO
    if _REPO is None:
        _REPO = build_repository(
            DbmsSimulator(standard_cluster()),
            [htap_mixed(0.6)],
            n_samples=12,
            rng=np.random.default_rng(7),
        )
    return _REPO


# Every tuner family the driver refactor covers, sized so the whole
# matrix stays fast.  Factories are fresh per leg — strategy state must
# never leak across runs.
_SPECS = {
    "default": lambda: make_tuner("default"),
    "random-search": lambda: make_tuner("random-search"),
    "grid-search": lambda: make_tuner("grid-search", levels=3, n_knobs=2),
    "genetic": lambda: make_tuner("genetic", population=4, elite=1),
    "rrs": lambda: make_tuner("rrs", n_global=4),
    "adaptive-sampling": lambda: make_tuner(
        "adaptive-sampling", n_bootstrap=6, n_candidates=60
    ),
    "sard": lambda: make_tuner("sard", batch_size=2),
    "ituned": lambda: make_tuner(
        "ituned", n_init=5, batch_size=3, n_candidates=60
    ),
    "bayesopt": lambda: make_tuner("bayesopt", n_init=4, n_candidates=60),
    "cem": lambda: make_tuner("cem", batch=4),
    "nn-tuner": lambda: make_tuner(
        "nn-tuner", n_init=5, epochs=30, hidden=(8, 8), n_candidates=60
    ),
    "ensemble": lambda: make_tuner(
        "ensemble", n_init=5, mlp_epochs=30, n_candidates=60
    ),
    "ottertune": lambda: make_tuner(
        "ottertune", repository=_repository(), n_init=4, n_candidates=60
    ),
}


def _tune_digest(name, runner=None, eval_cache=None, chaos_rate=0.0):
    system = InstrumentedSystem(
        DbmsSimulator(standard_cluster()),
        noise=_NOISE,
        rng=np.random.default_rng(_NOISE_SEED),
        eval_cache=eval_cache,
        runner=runner,
    )
    fault_digest = None
    if chaos_rate > 0:
        system = ChaosSystem(
            system, [TransientFaults(rate=chaos_rate)], seed=_CHAOS_SEED
        )
    tuner = _SPECS[name]()
    result = tuner.tune(
        system, htap_mixed(0.3), _BUDGET,
        rng=np.random.default_rng(_TUNER_SEED),
    )
    if chaos_rate > 0:
        fault_digest = system.fault_digest()
    return result.history.digest(), result.n_real_runs, fault_digest


@pytest.mark.parametrize("name", sorted(_SPECS))
def test_serial_parallel_cached_digests_identical(name):
    serial, runs, _ = _tune_digest(name)
    with ParallelRunner(jobs=4, mode="thread") as runner:
        parallel, parallel_runs, _ = _tune_digest(name, runner=runner)
    cached, cached_runs, _ = _tune_digest(name, eval_cache=EvaluationCache())

    assert runs > 0
    assert serial == parallel == cached
    assert runs == parallel_runs == cached_runs


@pytest.mark.parametrize("name", sorted(_SPECS))
def test_chaos_digests_identical_serial_vs_parallel(name):
    serial, runs, serial_faults = _tune_digest(name, chaos_rate=0.1)
    with ParallelRunner(jobs=4, mode="thread") as runner:
        parallel, parallel_runs, parallel_faults = _tune_digest(
            name, runner=runner, chaos_rate=0.1
        )

    assert runs == parallel_runs
    assert serial == parallel
    assert serial_faults == parallel_faults
