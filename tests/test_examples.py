"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; they must not rot.  Each is run
in a subprocess exactly as the README instructs.
"""

import os
import subprocess
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_EXAMPLES = sorted(
    f for f in os.listdir(os.path.join(_ROOT, "examples")) if f.endswith(".py")
)


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(_ROOT, "examples", script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_every_example_is_documented_in_readme():
    with open(os.path.join(_ROOT, "README.md")) as f:
        readme = f.read()
    for script in _EXAMPLES:
        assert script in readme, f"{script} missing from README examples table"
