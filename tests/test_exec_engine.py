"""Tests for the execution engine: ParallelRunner, EvaluationCache,
batched session evaluation, ordered run-all, and incremental GP fits."""

import numpy as np
import pytest

from repro.bench.harness import standard_cluster
from repro.bench.run_all import run_all_experiments
from repro.core import Budget
from repro.core.faults import FlakySystem
from repro.core.session import TuningSession
from repro.core.system import InstrumentedSystem
from repro.exceptions import BudgetExhausted
from repro.exec import (
    EvaluationCache,
    ParallelRunner,
    fingerprint,
    resolve_jobs,
)
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.kernels import Matern52
from repro.systems.dbms import DbmsSimulator, htap_mixed


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _dbms():
    return DbmsSimulator(standard_cluster())


def _configs(system, n, seed=0):
    rng = np.random.default_rng(seed)
    return [system.config_space.sample_configuration(rng) for _ in range(n)]


class TestParallelRunner:
    def test_serial_thread_process_agree(self):
        items = list(range(12))
        expected = [_square(i) for i in items]
        for mode in ("serial", "thread", "process", "auto"):
            with ParallelRunner(jobs=3, mode=mode) as runner:
                assert runner.map(_square, items) == expected, mode

    def test_order_preserved_with_uneven_tasks(self):
        import time

        def slow_if_even(x):
            if x % 2 == 0:
                time.sleep(0.01)
            return x

        with ParallelRunner(jobs=4, mode="thread") as runner:
            assert runner.map(slow_if_even, list(range(10))) == list(range(10))

    def test_starmap(self):
        with ParallelRunner(jobs=2, mode="thread") as runner:
            assert runner.starmap(_add, [(1, 2), (3, 4)]) == [3, 7]

    def test_unpicklable_fn_falls_back(self):
        # A closure cannot cross a process boundary; auto mode must
        # degrade to threads and still return correct, ordered results.
        offset = 100
        with ParallelRunner(jobs=2, mode="auto") as runner:
            assert runner.map(lambda x: x + offset, [1, 2, 3]) == [101, 102, 103]

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(2) == 2
        assert resolve_jobs(0) >= 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(5) == 5
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_serial_mode_never_builds_pools(self):
        runner = ParallelRunner(jobs=8, mode="serial")
        assert runner.effective_jobs == 1
        runner.map(_square, [1, 2, 3])
        assert runner._process_pool is None
        assert runner._thread_pool is None


class TestFingerprint:
    def test_stable_and_discriminating(self):
        system = _dbms()
        assert fingerprint(_dbms()) == fingerprint(system)
        assert fingerprint(htap_mixed(0.3)) == fingerprint(htap_mixed(0.3))
        assert fingerprint(htap_mixed(0.3)) != fingerprint(htap_mixed(0.6))

    def test_rng_holding_object_is_unfingerprintable(self):
        from repro.exec import Unfingerprintable

        flaky = FlakySystem(_dbms(), 0.2, rng=np.random.default_rng(0))
        with pytest.raises(Unfingerprintable):
            fingerprint(flaky)


class TestEvaluationCache:
    def test_hits_misses_and_stats(self):
        cache = EvaluationCache()
        system, wl = _dbms(), htap_mixed(0.3)
        config = system.default_configuration()
        first = cache.run(system, wl, config)
        second = cache.run(system, wl, config)
        assert first.runtime_s == second.runtime_s
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction(self):
        cache = EvaluationCache(max_entries=2)
        system, wl = _dbms(), htap_mixed(0.3)
        for config in _configs(system, 3):
            cache.run(system, wl, config)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1

    def test_cached_runs_byte_identical_to_cold(self):
        # The cache sits below noise injection: a hit still draws noise
        # in sequence, so a warmed system must reproduce a cold system's
        # measurements exactly, including the noise.
        wl = htap_mixed(0.3)
        configs = _configs(_dbms(), 5, seed=7)
        sequence = configs + configs  # second half hits the cache

        cold = InstrumentedSystem(_dbms(), noise=0.2,
                                  rng=np.random.default_rng(42))
        cached = InstrumentedSystem(_dbms(), noise=0.2,
                                    rng=np.random.default_rng(42),
                                    eval_cache=EvaluationCache())
        cold_rt = [cold.run(wl, c).runtime_s for c in sequence]
        warm_rt = [cached.run(wl, c).runtime_s for c in sequence]
        assert warm_rt == cold_rt
        assert cached.eval_cache.stats()["hits"] == len(configs)
        assert cached.run_count == cold.run_count == len(sequence)

    def test_uncacheable_system_runs_directly(self):
        cache = EvaluationCache()
        flaky = FlakySystem(_dbms(), 0.5, rng=np.random.default_rng(3))
        wl = htap_mixed(0.3)
        config = flaky.default_configuration()
        results = [cache.run(flaky, wl, config).ok for _ in range(6)]
        # Never cached: the flaky rng advances, so outcomes vary.
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
        assert len(set(results)) == 2

    def test_batch_runner_results_match_serial(self):
        wl = htap_mixed(0.3)
        configs = _configs(_dbms(), 6, seed=1)
        serial = InstrumentedSystem(_dbms(), noise=0.1,
                                    rng=np.random.default_rng(5))
        with ParallelRunner(jobs=2, mode="thread") as runner:
            parallel = InstrumentedSystem(_dbms(), noise=0.1,
                                          rng=np.random.default_rng(5),
                                          eval_cache=EvaluationCache(),
                                          runner=runner)
            serial_rt = [m.runtime_s for m in serial.run_batch(wl, configs)]
            parallel_rt = [m.runtime_s for m in parallel.run_batch(wl, configs)]
        assert parallel_rt == serial_rt


class TestEvaluateBatch:
    def _session(self, max_runs):
        system = _dbms()
        return system, TuningSession(
            system, htap_mixed(0.3), Budget(max_runs=max_runs),
            rng=np.random.default_rng(0),
        )

    def test_batch_charged_atomically(self):
        system, session = self._session(10)
        measurements = session.evaluate_batch(_configs(system, 4), tag="b")
        assert len(measurements) == 4
        assert session.real_runs == 4
        assert [o.tag for o in session.history.real_observations()] == ["b"] * 4

    def test_truncation_at_budget_boundary(self):
        system, session = self._session(5)
        for config in _configs(system, 3):
            session.evaluate(config)
        # 2 runs remain: a batch of 4 truncates to the 2-run prefix.
        measurements = session.evaluate_batch(_configs(system, 4, seed=9))
        assert len(measurements) == 2
        assert session.real_runs == 5
        with pytest.raises(BudgetExhausted):
            session.evaluate_batch(_configs(system, 2, seed=11))

    def test_empty_batch_and_tag_validation(self):
        system, session = self._session(3)
        assert session.evaluate_batch([]) == []
        assert session.real_runs == 0
        with pytest.raises(ValueError):
            session.evaluate_batch(_configs(system, 2), tags=["only-one"])

    def test_per_config_tags_recorded(self):
        system, session = self._session(4)
        session.evaluate_batch(_configs(system, 2), tags=["x0", "x1"])
        assert [o.tag for o in session.history.real_observations()] == ["x0", "x1"]


class TestRunAllOrdering:
    def test_only_order_is_honored(self):
        results = run_all_experiments(quick=True, only=["E16", "E3", "E10"])
        assert [key for key, _, _ in results] == ["E16", "E3", "E10"]

    def test_only_dedupes_and_ignores_unknown(self):
        results = run_all_experiments(quick=True, only=["E3", "E3", "E99"])
        assert [key for key, _, _ in results] == ["E3"]

    def test_parallel_rows_match_serial(self):
        only = ["E3", "E16", "E10"]
        serial = run_all_experiments(quick=True, only=only, jobs=1)
        parallel = run_all_experiments(quick=True, only=only, jobs=2)
        assert [k for k, _, _ in parallel] == [k for k, _, _ in serial]
        for (_, s_res, _), (_, p_res, _) in zip(serial, parallel):
            assert p_res.headers == s_res.headers
            assert p_res.rows == s_res.rows


class TestIncrementalGP:
    def test_add_observation_matches_full_refit(self):
        rng = np.random.default_rng(0)
        X = rng.random((20, 4))
        y = np.sin(X.sum(axis=1)) + 0.05 * rng.standard_normal(20)
        gp = GaussianProcess(kernel=Matern52(), optimize=True).fit(X[:16], y[:16])
        for i in range(16, 20):
            gp.add_observation(X[i], y[i])
        refit = GaussianProcess(
            kernel=gp.kernel, noise=gp.noise, optimize=False
        ).fit(X, y)

        Xq = rng.random((30, 4))
        mean_inc, std_inc = gp.predict(Xq, return_std=True)
        mean_ref, std_ref = refit.predict(Xq, return_std=True)
        np.testing.assert_allclose(mean_inc, mean_ref, atol=1e-8)
        np.testing.assert_allclose(std_inc, std_ref, atol=1e-8)
        # The refit reports LML with base jitter while the factorization
        # carries escalated jitter, so the reported scalar agrees only to
        # ~1e-7; the fits themselves agree to 1e-8 above.
        assert gp.log_marginal_likelihood_ == pytest.approx(
            refit.log_marginal_likelihood_, abs=1e-6
        )

    def test_add_observation_duplicate_point_stays_stable(self):
        rng = np.random.default_rng(1)
        X = rng.random((10, 3))
        y = X.sum(axis=1)
        gp = GaussianProcess(kernel=Matern52(), noise=1e-6, optimize=False)
        gp.fit(X, y)
        gp.add_observation(X[0], y[0])  # exact duplicate
        mean, std = gp.predict(X[:3], return_std=True)
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))
        assert gp.n_train == 11

    def test_predict_without_std_returns_none(self):
        rng = np.random.default_rng(2)
        X = rng.random((8, 2))
        gp = GaussianProcess(optimize=False).fit(X, X.sum(axis=1))
        mean, std = gp.predict(X)
        assert std is None
        mean_again, std_again = gp.predict(X, return_std=True)
        np.testing.assert_allclose(mean, mean_again)
        assert std_again is not None


class TestBatchedTuners:
    def test_ituned_batched_respects_budget(self):
        from repro.tuners.experiment.ituned import ITunedTuner

        system = _dbms()
        result = ITunedTuner(n_init=6, n_candidates=50, batch_size=3).tune(
            system, htap_mixed(0.3), Budget(max_runs=14),
            rng=np.random.default_rng(0),
        )
        assert result.n_real_runs == 14
        assert np.isfinite(result.best_runtime_s)

    def test_sard_batched_ranking_matches_serial(self):
        from repro.tuners.experiment.sard import SardRanker

        ranker = SardRanker()
        system = _dbms()
        wl = htap_mixed(0.3)
        s1 = TuningSession(system, wl, Budget(max_runs=40),
                           rng=np.random.default_rng(4))
        s2 = TuningSession(system, wl, Budget(max_runs=40),
                           rng=np.random.default_rng(4))
        serial = ranker.rank(s1, batch_size=1)
        batched = ranker.rank(s2, batch_size=5)
        assert [name for name, _ in batched] == [name for name, _ in serial]
        np.testing.assert_allclose(
            [v for _, v in batched], [v for _, v in serial]
        )
