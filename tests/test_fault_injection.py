"""Robustness tests: tuners under environmental fault injection."""

import math

import numpy as np
import pytest

from repro.core import Budget
from repro.core.faults import FlakySystem
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed
from repro.tuners import (
    AddmDiagnoser,
    ColtOnlineTuner,
    ITunedTuner,
    RandomSearchTuner,
    RuleBasedTuner,
    TraceSimulationTuner,
)
from repro.core.workload import WorkloadStream


@pytest.fixture
def flaky():
    inner = DbmsSimulator(Cluster.uniform(4))
    return FlakySystem(inner, failure_rate=0.3, rng=np.random.default_rng(5))


@pytest.fixture(scope="module")
def workload():
    return htap_mixed(0.3)


class TestFlakySystem:
    def test_validation(self):
        inner = DbmsSimulator()
        with pytest.raises(ValueError):
            FlakySystem(inner, failure_rate=1.0)

    def test_injects_at_roughly_the_rate(self, workload):
        inner = DbmsSimulator(Cluster.uniform(4))
        flaky = FlakySystem(inner, failure_rate=0.3, rng=np.random.default_rng(1))
        config = inner.default_configuration()
        failures = sum(
            1 for _ in range(100) if not flaky.run(workload, config).ok
        )
        assert 15 <= failures <= 45
        assert flaky.injected_failures == failures

    def test_failures_charge_partial_time(self, workload):
        inner = DbmsSimulator(Cluster.uniform(4))
        flaky = FlakySystem(
            inner, failure_rate=0.99999, rng=np.random.default_rng(1),
            partial_elapsed_s=42.0,
        )
        m = flaky.run(workload, inner.default_configuration())
        assert not m.ok
        assert m.metric("elapsed_before_failure_s") == 42.0

    def test_zero_rate_is_identity(self, workload):
        inner = DbmsSimulator(Cluster.uniform(4))
        flaky = FlakySystem(inner, failure_rate=0.0)
        config = inner.default_configuration()
        assert flaky.run(workload, config).runtime_s == pytest.approx(
            inner.run(workload, config).runtime_s
        )


class TestTunersUnderFaults:
    @pytest.mark.parametrize(
        "tuner",
        [
            RandomSearchTuner(),
            ITunedTuner(n_init=4),
            RuleBasedTuner(),
            TraceSimulationTuner(n_model_samples=150),
            AddmDiagnoser(),
        ],
        ids=["random", "ituned", "rules", "trace-sim", "addm"],
    )
    def test_tuner_survives_30pct_failures(self, flaky, workload, tuner):
        result = tuner.tune(flaky, workload, Budget(max_runs=12), np.random.default_rng(0))
        assert result.n_real_runs <= 12
        flaky.config_space.configuration(result.best_config.to_dict())
        if any(o.ok for o in result.history.real_observations()):
            assert math.isfinite(result.best_runtime_s)

    def test_online_tuner_retreats_after_injected_failure(self, flaky, workload):
        stream = WorkloadStream.constant(workload, 10)
        result = ColtOnlineTuner().tune_stream(flaky, stream, np.random.default_rng(2))
        default = flaky.inner.default_configuration()
        for i, step in enumerate(result.steps[:-1]):
            if not step.measurement.ok:
                assert result.steps[i + 1].config == default

    def test_all_failures_still_produces_result(self, workload):
        inner = DbmsSimulator(Cluster.uniform(4))
        always_fail = FlakySystem(
            inner, failure_rate=0.999999, rng=np.random.default_rng(3)
        )
        result = RandomSearchTuner().tune(
            always_fail, workload, Budget(max_runs=6), np.random.default_rng(0)
        )
        assert result.best_config == inner.default_configuration()
        assert math.isinf(result.best_runtime_s)
