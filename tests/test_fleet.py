"""Fleet controller, safety gate, half-open breaker, drift edges, and
checkpoint/resume determinism."""

import json
import math
import os

import numpy as np
import pytest

from repro.chaos.policies import INJECTED_FAULT_KEY
from repro.core import Budget, Measurement
from repro.core.driver import Candidate, SearchDriver
from repro.core.measurement import MODEL, REAL, Observation
from repro.core.session import TuningSession
from repro.exec.resilience import CircuitBreaker
from repro.fleet import (
    FleetController,
    SafetyGate,
    TenantSpec,
    read_checkpoint,
    write_checkpoint,
)
from repro.fleet.checkpoint import decode_runtime, encode_runtime
from repro.kb import KnowledgeBase
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics
from repro.tuners.adaptive.drift import DriftDetector, MetricDriftDetector


def _system():
    return DbmsSimulator(Cluster.uniform(4))


@pytest.fixture(scope="module")
def workload():
    return htap_mixed(0.3)


# ---------------------------------------------------------------------------
# Drift detector edge behavior (and eager parameter validation)
# ---------------------------------------------------------------------------
class TestDriftDetectorEdges:
    def test_non_finite_fires_before_min_samples_and_resets(self):
        detector = DriftDetector(min_samples=5)
        assert detector.update(10.0) is False
        assert detector.update(math.inf) is True  # a crash is a drift
        assert detector.n_samples == 0  # fresh baseline afterwards

    def test_nan_also_fires(self):
        detector = DriftDetector()
        assert detector.update(math.nan) is True

    def test_baseline_resets_after_drift(self):
        detector = DriftDetector(delta=0.05, threshold=0.5)
        for _ in range(6):
            detector.update(1.0)
        fired = any(detector.update(5.0) for _ in range(10))
        assert fired
        assert detector.n_samples < 10  # reset happened mid-stream

    def test_constant_stream_never_fires(self):
        detector = DriftDetector(min_samples=2)
        assert not any(detector.update(42.0) for _ in range(500))

    @pytest.mark.parametrize(
        "kwargs",
        [{"delta": -0.1}, {"threshold": 0.0}, {"min_samples": 1}],
    )
    def test_drift_detector_validates_eagerly(self, kwargs):
        with pytest.raises(ValueError):
            DriftDetector(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"delta": -0.1}, {"threshold": 0.0}, {"min_samples": 1}],
    )
    def test_metric_drift_detector_validates_eagerly(self, kwargs):
        # Regression: these used to pass the constructor and only blow
        # up when the first per-metric detector was built lazily.
        with pytest.raises(ValueError):
            MetricDriftDetector(**kwargs)

    def test_serialization_round_trip_preserves_behavior(self):
        a = DriftDetector(delta=0.05, threshold=0.5)
        b = None
        stream = [1.0, 1.1, 0.9, 1.0, 3.0, 3.2, 2.9, 3.1, 3.0]
        for i, value in enumerate(stream):
            if i == 4:
                b = DriftDetector.from_jsonable(a.to_jsonable())
            fired_a = a.update(value)
            if b is not None:
                assert b.update(value) == fired_a

    def test_metric_serialization_round_trip(self):
        a = MetricDriftDetector(delta=0.1, threshold=1.0)
        a.update({"hit_ratio": 0.9, "spill_mb": 10.0})
        b = MetricDriftDetector.from_jsonable(a.to_jsonable())
        for _ in range(20):
            sample = {"hit_ratio": 0.2, "spill_mb": 300.0}
            assert a.update(sample) == b.update(sample)

    def test_from_jsonable_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            DriftDetector.from_jsonable({"kind": "nope"})
        with pytest.raises(ValueError):
            MetricDriftDetector.from_jsonable({"kind": "nope"})


# ---------------------------------------------------------------------------
# Circuit breaker: half-open recovery (and the forever-open default)
# ---------------------------------------------------------------------------
def _config_at(space, x):
    return space.from_array(np.full(space.dimension, x))


class TestBreakerHalfOpen:
    def _open_region(self, breaker, config):
        fail = Measurement.failure()
        for _ in range(breaker.threshold):
            breaker.record(config, fail)
        assert breaker.is_open(config)

    def test_default_stays_open_forever(self):
        # Pin the historical behavior: without cooldown_runs an open
        # region never recovers, no matter how many runs go by.
        system = _system()
        breaker = CircuitBreaker(threshold=2)
        bad = _config_at(system.config_space, 0.95)
        good = _config_at(system.config_space, 0.3)
        self._open_region(breaker, bad)
        for _ in range(200):
            breaker.record(good, Measurement(runtime_s=1.0))
        assert breaker.is_open(bad)
        assert breaker.would_block(bad)

    def test_cooldown_grants_exactly_one_probe(self):
        system = _system()
        breaker = CircuitBreaker(threshold=1, cooldown_runs=3)
        bad = _config_at(system.config_space, 0.95)
        good = _config_at(system.config_space, 0.3)
        breaker.record(bad, Measurement.failure())
        assert breaker.is_open(bad)
        for _ in range(3):
            breaker.record(good, Measurement(runtime_s=1.0))
        assert not breaker.is_open(bad)  # the probe grant
        assert breaker.is_open(bad)  # only one until it resolves

    def test_probe_success_closes_circuit(self):
        system = _system()
        breaker = CircuitBreaker(threshold=1, cooldown_runs=1)
        bad = _config_at(system.config_space, 0.95)
        breaker.record(bad, Measurement.failure())
        breaker.record(bad, Measurement.failure())  # advance run clock
        assert not breaker.is_open(bad)  # probe granted
        breaker.record(bad, Measurement(runtime_s=2.0))
        assert not breaker.is_open(bad)
        assert breaker.open_regions == []

    def test_probe_failure_reopens_and_rearms(self):
        system = _system()
        breaker = CircuitBreaker(threshold=1, cooldown_runs=2)
        bad = _config_at(system.config_space, 0.95)
        good = _config_at(system.config_space, 0.3)
        breaker.record(bad, Measurement.failure())
        for _ in range(2):
            breaker.record(good, Measurement(runtime_s=1.0))
        assert not breaker.is_open(bad)  # probe granted
        breaker.record(bad, Measurement.failure())  # probe fails
        assert breaker.is_open(bad)  # re-opened ...
        breaker.record(good, Measurement(runtime_s=1.0))
        assert breaker.is_open(bad)  # ... and cooldown re-armed
        breaker.record(good, Measurement(runtime_s=1.0))
        assert not breaker.is_open(bad)  # next probe after full cooldown

    def test_environmental_probe_failure_releases_slot(self):
        system = _system()
        breaker = CircuitBreaker(threshold=1, cooldown_runs=1)
        bad = _config_at(system.config_space, 0.95)
        breaker.record(bad, Measurement.failure())
        breaker.record(bad, Measurement.failure())
        assert not breaker.is_open(bad)  # probe granted
        env_fail = Measurement(
            runtime_s=math.inf, metrics={INJECTED_FAULT_KEY: 1.0}, failed=True
        )
        breaker.record(bad, env_fail)  # inconclusive
        assert not breaker.is_open(bad)  # slot released; probe again

    def test_would_block_is_side_effect_free(self):
        system = _system()
        breaker = CircuitBreaker(threshold=1, cooldown_runs=1)
        bad = _config_at(system.config_space, 0.95)
        breaker.record(bad, Measurement.failure())
        breaker.record(bad, Measurement.failure())
        for _ in range(5):
            assert not breaker.would_block(bad)  # cooldown elapsed
        assert not breaker.is_open(bad)  # probe still available
        assert breaker.is_open(bad)  # and consumed exactly once

    def test_half_open_state_survives_serialization(self):
        system = _system()
        breaker = CircuitBreaker(threshold=1, cooldown_runs=2)
        bad = _config_at(system.config_space, 0.95)
        breaker.record(bad, Measurement.failure())
        restored = CircuitBreaker.from_jsonable(breaker.to_jsonable())
        good = _config_at(system.config_space, 0.3)
        for b in (breaker, restored):
            b.record(good, Measurement(runtime_s=1.0))
            b.record(good, Measurement(runtime_s=1.0))
        assert breaker.is_open(bad) == restored.is_open(bad)
        assert breaker.to_jsonable() == restored.to_jsonable()

    def test_cooldown_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=2, cooldown_runs=0)


# ---------------------------------------------------------------------------
# Safety gate decisions
# ---------------------------------------------------------------------------
def _gate_session(workload, breaker=None, runs=20):
    system = _system()
    session = TuningSession(
        system, workload, Budget(max_runs=runs),
        np.random.default_rng(0), breaker=breaker,
    )
    space = system.config_space
    # Good cluster near 0.3 (runtime 10s), bad cluster near 0.9 (30s).
    for x, runtime in ((0.30, 10.0), (0.32, 10.5), (0.28, 9.8),
                       (0.90, 30.0), (0.88, 31.0)):
        session.history.record(Observation(
            _config_at(space, x), Measurement(runtime_s=runtime), source=REAL,
        ))
    return session


class TestSafetyGate:
    def test_allows_near_good_cluster(self, workload):
        session = _gate_session(workload)
        gate = SafetyGate(max_regression=0.25)
        cand = Candidate(_config_at(session.space, 0.31), tag="p")
        kept = gate.filter(session, [cand])
        assert kept == [cand]
        assert gate.allowed == 1 and not gate.vetoes

    def test_vetoes_predicted_regression(self, workload):
        session = _gate_session(workload)
        gate = SafetyGate(max_regression=0.25, clip=False)
        cand = Candidate(_config_at(session.space, 0.89), tag="p")
        assert gate.filter(session, [cand]) == []
        assert gate.regression_vetoes == 1
        record = gate.vetoes[0]
        assert record.reason == "regression"
        assert record.predicted_runtime_s > record.incumbent_runtime_s * 1.25

    def test_veto_recorded_as_uncharged_model_observation(self, workload):
        session = _gate_session(workload)
        real_before = session.real_runs
        best_before = session.best_runtime()
        gate = SafetyGate(max_regression=0.25, clip=False)
        gate.filter(session, [Candidate(_config_at(session.space, 0.89), tag="p")])
        audit = [o for o in session.history.observations if o.tag == "gate-veto"]
        assert len(audit) == 1 and audit[0].source == MODEL
        assert session.real_runs == real_before  # uncharged
        assert session.best_runtime() == best_before  # can't become incumbent

    def test_clip_blends_toward_best(self, workload):
        session = _gate_session(workload)
        # alpha=0 blends fully back to the best config — deterministic.
        gate = SafetyGate(max_regression=0.25, clip_alphas=(0.0,))
        kept = gate.filter(
            session, [Candidate(_config_at(session.space, 0.89), tag="p")]
        )
        assert len(kept) == 1 and kept[0].tag == "p+clipped"
        assert gate.clipped == 1
        assert len(gate.clip_records) == 1
        assert gate.clip_records[0].reason == "clip"
        # The clipped blend sits at the best config, far from the raw one.
        assert np.allclose(
            kept[0].config.to_array(), session.best_config().to_array()
        )

    def test_quarantine_veto_without_consuming_probe(self, workload):
        breaker = CircuitBreaker(threshold=1, cooldown_runs=50)
        session = _gate_session(workload, breaker=breaker)
        bad = _config_at(session.space, 0.95)
        breaker.record(bad, Measurement.failure())
        gate = SafetyGate()
        assert gate.filter(session, [Candidate(bad, tag="p")]) == []
        assert gate.quarantine_vetoes == 1
        assert gate.vetoes[0].predicted_runtime_s is None
        assert breaker.to_jsonable()["probing"] == []  # would_block only

    def test_too_few_observations_allows(self, workload):
        system = _system()
        session = TuningSession(
            system, workload, Budget(max_runs=5), np.random.default_rng(0)
        )
        gate = SafetyGate(min_observations=3)
        cand = Candidate(_config_at(session.space, 0.9), tag="p")
        assert gate.filter(session, [cand]) == [cand]

    def test_zero_bypass_certificate(self, workload):
        session = _gate_session(workload)
        gate = SafetyGate(max_regression=0.25)
        rng = np.random.default_rng(7)
        candidates = [
            Candidate(_config_at(session.space, x))
            for x in rng.uniform(0.05, 0.95, size=40)
        ]
        gate.filter(session, candidates)
        assert gate.max_allowed_delta <= gate.max_regression + 1e-9

    def test_audit_state_survives_serialization(self, workload):
        session = _gate_session(workload)
        gate = SafetyGate(max_regression=0.25, clip=False)
        gate.filter(session, [
            Candidate(_config_at(session.space, 0.31), tag="a"),
            Candidate(_config_at(session.space, 0.89), tag="b"),
        ])
        restored = SafetyGate.from_jsonable(gate.to_jsonable())
        assert restored.to_jsonable() == gate.to_jsonable()
        assert restored.summary() == gate.summary()


class TestDriverGuard:
    class _VetoAll:
        def filter(self, session, candidates):
            return []

    def test_guard_exhaustion_terminates_driver(self, workload):
        from repro.core.registry import make_tuner

        system = _system()
        session = TuningSession(
            system, workload, Budget(max_runs=10), np.random.default_rng(0)
        )
        driver = SearchDriver(guard=self._VetoAll(), max_fruitless_asks=3)
        driver.run(make_tuner("random-search"), session)
        assert session.real_runs == 1  # only the default evaluation ran

    def test_max_fruitless_asks_validated(self):
        with pytest.raises(ValueError):
            SearchDriver(max_fruitless_asks=0)


# ---------------------------------------------------------------------------
# Checkpoint file format
# ---------------------------------------------------------------------------
class TestCheckpointIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        payload = {"kind": "fleet_checkpoint", "version": 1, "x": [1, 2.5]}
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload
        assert not os.path.exists(path + ".tmp")  # atomic replace

    def test_write_rejects_wrong_kind(self, tmp_path):
        with pytest.raises(ValueError):
            write_checkpoint(str(tmp_path / "x.ckpt"), {"kind": "other"})

    def test_read_rejects_wrong_payload(self, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        with open(path, "w") as fh:
            json.dump({"kind": "fleet_checkpoint", "version": 999}, fh)
        with pytest.raises(ValueError):
            read_checkpoint(path)

    def test_runtime_encoding(self):
        assert encode_runtime(math.inf) == "inf"
        assert decode_runtime("inf") == math.inf
        assert encode_runtime(None) is None
        assert decode_runtime(None) is None
        assert decode_runtime(encode_runtime(3.5)) == 3.5


# ---------------------------------------------------------------------------
# Fleet controller
# ---------------------------------------------------------------------------
def _fleet_specs(chaos=0.0, budget=4, phase_length=2):
    return [
        TenantSpec(
            name=f"t{i}",
            system=_system(),
            workloads=[olap_analytics(0.3), htap_mixed(0.3)],
            phase_length=phase_length,
            chaos_intensity=chaos if i == 0 else 0.0,
            episode_budget=budget,
        )
        for i in range(2)
    ]


def _controller(specs, kb, epochs=4, retune=True, **kwargs):
    return FleetController(
        specs,
        epochs=epochs,
        seed=11,
        kb=kb,
        strategy="random-search",
        max_regression=0.25,
        deadline_s=2000.0,
        retune_on_drift=retune,
        **kwargs,
    )


class TestFleetController:
    def test_small_fleet_runs_and_reports(self):
        with KnowledgeBase(":memory:") as kb:
            report = _controller(_fleet_specs(), kb, epochs=4).run()
        assert report["epochs_done"] == 4
        for tenant in report["tenants"].values():
            assert tenant["monitors"] == 4
            assert len(tenant["deployed"]) == 4
            # Both workload phases were tuned and got vetted incumbents.
            assert len(tenant["incumbents"]) == 2
            for entry in tenant["incumbents"].values():
                assert not entry["stale"]
                assert entry["runtime_s"] != "inf"

    def test_incumbents_only_deployed_on_their_workload(self):
        with KnowledgeBase(":memory:") as kb:
            controller = _controller(_fleet_specs(), kb, epochs=4)
            report = controller.run()
        for tenant in report["tenants"].values():
            # Epoch 2 starts the second phase; the first phase's tuned
            # incumbent must not carry over — the first deployment of a
            # new workload is the safe default.
            first_phase2 = tenant["deployed"][2]
            assert first_phase2["workload"] != tenant["deployed"][0]["workload"]

    def test_oneshot_arm_tunes_exactly_once(self):
        with KnowledgeBase(":memory:") as kb:
            report = _controller(
                _fleet_specs(), kb, epochs=4, retune=False
            ).run()
        for tenant in report["tenants"].values():
            assert tenant["retunes"] == 1
            assert len(tenant["incumbents"]) == 1  # only the first workload

    def test_identical_seeds_are_deterministic(self):
        digests = []
        for _ in range(2):
            with KnowledgeBase(":memory:") as kb:
                controller = _controller(_fleet_specs(chaos=0.2), kb, epochs=4)
                controller.run()
                digests.append(controller.tenant_digests())
        assert digests[0] == digests[1]

    def test_checkpoint_requires_file_backed_kb(self, tmp_path):
        with KnowledgeBase(":memory:") as kb:
            with pytest.raises(ValueError, match="file-backed"):
                _controller(
                    _fleet_specs(), kb,
                    checkpoint_path=str(tmp_path / "f.ckpt"),
                )

    def test_restore_rejects_mismatched_fleet(self, tmp_path):
        ckpt = str(tmp_path / "fleet.ckpt")
        with KnowledgeBase(str(tmp_path / "kb.sqlite")) as kb:
            _controller(_fleet_specs(), kb, epochs=2,
                        checkpoint_path=ckpt).run()
        payload = read_checkpoint(ckpt)
        payload["fleet"]["tenants"] = ["other"]
        write_checkpoint(ckpt, payload)
        with KnowledgeBase(str(tmp_path / "kb.sqlite")) as kb:
            with pytest.raises(ValueError, match="tenants"):
                _controller(_fleet_specs(), kb, epochs=2,
                            checkpoint_path=ckpt)

    def test_tenant_names_must_be_unique(self):
        specs = _fleet_specs()
        dup = [specs[0], specs[0]]
        with pytest.raises(ValueError, match="unique"):
            FleetController(dup, epochs=1)


class TestKillResumeDeterminism:
    """Kill the controller mid-epoch; the resumed run must replay to
    byte-identical per-tenant history digests — with chaos mounted and a
    shared, file-backed knowledge base."""

    EPOCHS = 5
    KILL_EPOCH = 3

    def _run_uninterrupted(self, tmp_path):
        with KnowledgeBase(str(tmp_path / "a.kb")) as kb:
            controller = _controller(_fleet_specs(chaos=0.2), kb,
                                     epochs=self.EPOCHS)
            controller.run()
            return controller.tenant_digests(), len(kb)

    def test_digest_parity_after_mid_epoch_kill(self, tmp_path):
        reference, reference_kb_sessions = self._run_uninterrupted(tmp_path)

        class Kill(RuntimeError):
            pass

        def killer(epoch, tenant_name):
            # Dies after t0 finishes epoch 3: t0's episode is already
            # in the KB, t1's epoch 3 never happened.
            if epoch == self.KILL_EPOCH and tenant_name == "t0":
                raise Kill

        ckpt = str(tmp_path / "fleet.ckpt")
        kb_path = str(tmp_path / "b.kb")
        with KnowledgeBase(kb_path) as kb:
            controller = _controller(
                _fleet_specs(chaos=0.2), kb, epochs=self.EPOCHS,
                checkpoint_path=ckpt, on_tenant_complete=killer,
            )
            with pytest.raises(Kill):
                controller.run()

        with KnowledgeBase(kb_path) as kb:
            resumed = _controller(
                _fleet_specs(chaos=0.2), kb, epochs=self.EPOCHS,
                checkpoint_path=ckpt,
            )
            assert resumed.resumed_from_epoch == self.KILL_EPOCH
            resumed.run()
            assert resumed.tenant_digests() == reference
            # Replayed episodes were deduplicated, not double-ingested.
            assert len(kb) == reference_kb_sessions
