"""Behavioural tests for the Hadoop MapReduce simulator."""

import math

import pytest

from repro.systems.cluster import Cluster, NodeSpec
from repro.systems.hadoop import (
    GROUND_TRUTH_IMPACT,
    HADOOP_TUNING_KNOBS,
    HadoopSimulator,
    HadoopWorkload,
    MRJobSpec,
    adhoc_job,
    grep,
    join,
    pagerank,
    terasort,
    wordcount,
)


@pytest.fixture(scope="module")
def sim():
    return HadoopSimulator()


@pytest.fixture(scope="module")
def space(sim):
    return sim.config_space


@pytest.fixture(scope="module")
def sort_wl():
    return terasort(8.0)


def runtime(sim, wl, **overrides):
    return sim.run(wl, sim.config_space.partial(overrides)).runtime_s


class TestJobModel:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            MRJobSpec("j", input_mb=0)
        with pytest.raises(ValueError):
            MRJobSpec("j", input_mb=1, combiner_reduction=1.0)
        with pytest.raises(ValueError):
            MRJobSpec("j", input_mb=1, skew=-1)

    def test_workload_needs_jobs(self):
        with pytest.raises(Exception):
            HadoopWorkload("w", [])

    def test_map_output(self):
        job = MRJobSpec("j", input_mb=100, map_selectivity=1.5)
        assert job.map_output_mb == pytest.approx(150.0)

    def test_pagerank_iterations(self):
        wl = pagerank(2.0, iterations=4)
        assert len(wl.jobs) == 4

    def test_adhoc_seeded(self):
        assert adhoc_job(3).signature() == adhoc_job(3).signature()

    def test_scaled(self, sort_wl):
        assert sort_wl.scaled(2.0).total_input_mb() == pytest.approx(
            sort_wl.total_input_mb() * 2.0
        )


class TestEngineBehaviour:
    def test_deterministic(self, sim, sort_wl, space):
        config = space.default_configuration()
        assert sim.run(sort_wl, config).runtime_s == sim.run(sort_wl, config).runtime_s

    def test_reducer_count_u_shape(self, sim, sort_wl):
        r1 = runtime(sim, sort_wl, mapreduce_job_reduces=1)
        r64 = runtime(sim, sort_wl, mapreduce_job_reduces=64)
        r256 = runtime(sim, sort_wl, mapreduce_job_reduces=256)
        assert r64 < r1 / 5  # reducers are the dominant knob
        assert r256 > r64  # overhead + skew bite back

    def test_combiner_massive_for_wordcount(self, sim):
        wl = wordcount(8.0)
        off = runtime(sim, wl, combiner_enabled=False)
        on = runtime(sim, wl, combiner_enabled=True)
        assert off / on > 3.0

    def test_combiner_useless_for_terasort(self, sim, sort_wl):
        off = runtime(sim, sort_wl, combiner_enabled=False)
        on = runtime(sim, sort_wl, combiner_enabled=True)
        assert on == pytest.approx(off, rel=0.02)

    def test_compression_helps_shuffle_heavy(self, sim, sort_wl):
        off = runtime(sim, sort_wl, map_output_compress=False)
        on = runtime(sim, sort_wl, map_output_compress=True)
        assert on < off

    def test_gzip_costs_more_cpu_than_snappy(self, sim, sort_wl, space):
        snappy = sim.run(sort_wl, space.partial(
            {"map_output_compress": True, "compress_codec": "snappy"}))
        gzip = sim.run(sort_wl, space.partial(
            {"map_output_compress": True, "compress_codec": "gzip"}))
        assert gzip.metric("shuffle_mb") < snappy.metric("shuffle_mb")

    def test_sort_buffer_reduces_spills(self, sim, sort_wl, space):
        small = sim.run(sort_wl, space.partial(
            {"io_sort_mb": 16, "mapreduce_map_memory_mb": 2048}))
        big = sim.run(sort_wl, space.partial(
            {"io_sort_mb": 1024, "mapreduce_map_memory_mb": 2048}))
        assert small.metric("spilled_mb") > big.metric("spilled_mb")

    def test_container_oom(self, sim, sort_wl, space):
        m = sim.run(sort_wl, space.partial({"mapreduce_map_memory_mb": 256}))
        assert m.failed  # 256 MiB < sort buffer + JVM overhead

    def test_reduce_oom_with_tiny_reduce_memory(self, sim, space):
        wl = join(16.0)
        m = sim.run(wl, space.partial({
            "mapreduce_job_reduces": 4,
            "mapreduce_reduce_memory_mb": 256,
        }))
        assert m.failed

    def test_jvm_reuse_helps_many_small_tasks(self, sim, space):
        wl = grep(20.0)
        off = sim.run(wl, space.partial(
            {"dfs_block_size_mb": 16, "jvm_reuse": False})).runtime_s
        on = sim.run(wl, space.partial(
            {"dfs_block_size_mb": 16, "jvm_reuse": True})).runtime_s
        assert on < off

    def test_speculation_flips_sign_with_heterogeneity(self, sort_wl):
        homo = HadoopSimulator(Cluster.uniform(8))
        het = HadoopSimulator(Cluster.heterogeneous(
            [(6, NodeSpec()), (2, NodeSpec().scaled(cpu=0.4, disk=0.5))]
        ))
        def gain(sim):
            on = runtime(sim, sort_wl, speculative_execution=True)
            off = runtime(sim, sort_wl, speculative_execution=False)
            return off / on
        assert gain(homo) < 1.0 < gain(het)

    def test_output_replication_costs(self, sim, sort_wl):
        r1 = runtime(sim, sort_wl, output_replication=1)
        r5 = runtime(sim, sort_wl, output_replication=5)
        assert r5 > r1

    def test_multi_job_workloads_additive(self, sim, space):
        one = pagerank(2.0, iterations=1)
        three = pagerank(2.0, iterations=3)
        config = space.default_configuration()
        r1 = sim.run(one, config).runtime_s
        r3 = sim.run(three, config).runtime_s
        assert r3 == pytest.approx(3 * r1, rel=0.05)

    def test_inert_knobs_are_inert(self, sim, sort_wl, space):
        base = sim.run(sort_wl, space.default_configuration()).runtime_s
        for knob in ("heartbeat_interval_s", "counters_limit", "log_level"):
            for value in space[knob].grid(3):
                r = sim.run(sort_wl, space.partial({knob: value})).runtime_s
                assert r == pytest.approx(base, rel=0.01), knob

    def test_metrics_complete(self, sim, sort_wl, space):
        m = sim.run(sort_wl, space.default_configuration())
        for name in sim.metric_names:
            assert name in m.metrics

    def test_constraint_sort_buffer_vs_container(self, space):
        from repro.exceptions import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            space.partial({"io_sort_mb": 2048, "mapreduce_map_memory_mb": 1024})

    def test_ground_truth_covers_catalog(self, space):
        assert set(GROUND_TRUTH_IMPACT) == set(space.names())
        assert set(HADOOP_TUNING_KNOBS) <= set(space.names())
