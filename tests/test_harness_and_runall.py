"""Tests for the bench harness helpers, the run-all registry, and the
CLI 'experiment all' path."""

import numpy as np
import pytest

from repro.bench import EXPERIMENT_REGISTRY, run_all_experiments
from repro.bench.harness import (
    default_runtime,
    heterogeneous_cluster,
    representative_tuners,
    standard_cluster,
    tuned_result,
)
from repro.core import Budget
from repro.core.tuner import CATEGORIES
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics


class TestHarness:
    def test_standard_cluster(self):
        cluster = standard_cluster(4)
        assert len(cluster) == 4
        assert not cluster.is_heterogeneous

    def test_heterogeneous_cluster(self):
        cluster = heterogeneous_cluster(3, 2)
        assert len(cluster) == 5
        assert cluster.is_heterogeneous
        assert cluster.straggler_factor() > 1.3

    def test_default_runtime_noisy_but_close(self):
        system = DbmsSimulator(standard_cluster())
        wl = htap_mixed(0.3)
        clean = system.run(wl, system.default_configuration()).runtime_s
        noisy = default_runtime(system, wl, seed=3)
        assert noisy == pytest.approx(clean, rel=0.25)

    def test_representative_tuners_cover_all_categories(self):
        system = DbmsSimulator(standard_cluster())
        tuners = representative_tuners(system, [olap_analytics(0.3)])
        assert [category for category, _ in tuners] == list(CATEGORIES)

    def test_representative_tuners_without_history_fall_back(self):
        system = DbmsSimulator(standard_cluster())
        tuners = dict(representative_tuners(system, None))
        assert tuners["machine-learning"].name == "bayesopt"

    def test_tuned_result_respects_budget(self):
        from repro.tuners import RandomSearchTuner

        system = DbmsSimulator(standard_cluster())
        result = tuned_result(
            system, htap_mixed(0.3), RandomSearchTuner(), Budget(max_runs=4),
        )
        assert result.n_real_runs == 4


class TestRunAll:
    def test_registry_complete(self):
        assert set(EXPERIMENT_REGISTRY) == {f"E{i}" for i in range(1, 18)}

    def test_subset_run(self):
        results = run_all_experiments(quick=True, only=["E3"])
        assert len(results) == 1
        key, result, elapsed = results[0]
        assert key == "E3"
        assert result.experiment_id == "E3"
        assert elapsed >= 0

    def test_all_runners_accept_quick(self):
        import inspect

        for key, runner in EXPERIMENT_REGISTRY.items():
            assert "quick" in inspect.signature(runner).parameters, key


class TestCliAll:
    def test_experiment_all_quick(self, capsys):
        from repro.cli import main

        assert main(["experiment", "all", "--quick"]) == 0
        out = capsys.readouterr().out
        for key in ("[E1]", "[E5]", "[E15]"):
            assert key in out


class TestCsvExport:
    def test_to_csv_roundtrips(self):
        import csv
        import io

        from repro.bench import run_misconfig

        result = run_misconfig(n_samples=10, quick=True, seed=0)
        rows = list(csv.reader(io.StringIO(result.to_csv())))
        assert rows[0] == result.headers
        assert len(rows) == len(result.rows) + 1
