"""Tests for the interaction-detection analysis."""

import pytest

from repro.analysis.interactions import (
    interaction_matrix,
    interaction_strength,
    top_interactions,
)
from repro.bench.harness import standard_cluster
from repro.core import SubspaceSystem
from repro.systems.dbms import (
    DBMS_TUNING_KNOBS,
    DbmsSimulator,
    build_screening_space,
    oltp_orders,
)


@pytest.fixture(scope="module")
def fsystem():
    cluster = standard_cluster()
    system = DbmsSimulator(cluster)
    return SubspaceSystem(
        system, DBMS_TUNING_KNOBS,
        space=build_screening_space(cluster.min_node.memory_mb),
    )


@pytest.fixture(scope="module")
def workload():
    return oltp_orders(0.5)


class TestInteractionStrength:
    def test_designed_coupling_detected(self, fsystem, workload):
        strength = interaction_strength(
            fsystem, workload, "wal_buffers_mb", "checkpoint_interval_s"
        )
        assert strength is not None and strength > 0.05

    def test_independent_pair_near_zero(self, fsystem, workload):
        strength = interaction_strength(
            fsystem, workload, "prefetch_depth", "deadlock_timeout_ms"
        )
        assert strength is not None and strength < 0.02

    def test_symmetric(self, fsystem, workload):
        ab = interaction_strength(fsystem, workload, "wal_buffers_mb", "checkpoint_interval_s")
        ba = interaction_strength(fsystem, workload, "checkpoint_interval_s", "wal_buffers_mb")
        assert ab == pytest.approx(ba)

    def test_matrix_covers_all_pairs(self, fsystem, workload):
        knobs = ["wal_buffers_mb", "checkpoint_interval_s", "prefetch_depth"]
        matrix = interaction_matrix(fsystem, workload, knobs)
        assert len(matrix) == 3

    def test_top_interactions_sorted(self, fsystem, workload):
        knobs = [
            "wal_buffers_mb", "checkpoint_interval_s",
            "deadlock_timeout_ms", "log_flush_policy", "prefetch_depth",
        ]
        tops = top_interactions(fsystem, workload, knobs, k=4)
        strengths = [v for _, _, v in tops]
        assert strengths == sorted(strengths, reverse=True)
        assert tops[0][2] > tops[-1][2]
