"""Tests for the persistent tuning knowledge base and transfer priors."""

import math
import threading

import numpy as np
import pytest

from repro.core import Budget
from repro.core.measurement import Measurement, Observation, TuningHistory
from repro.kb import (
    KnowledgeBase,
    WorkloadFingerprint,
    fingerprint_from_history,
    probe_fingerprint,
    rank_similar,
    warm_start_prior,
)
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics, oltp_orders
from repro.tuners import (
    BayesOptTuner,
    ITunedTuner,
    OtterTuneRepository,
    RandomSearchTuner,
    build_repository,
)


@pytest.fixture(scope="module")
def system():
    return DbmsSimulator()


@pytest.fixture(scope="module")
def olap_result(system):
    return RandomSearchTuner().tune(
        system, olap_analytics(), Budget(max_runs=10), np.random.default_rng(0)
    )


@pytest.fixture()
def kb(system, olap_result):
    with KnowledgeBase(":memory:") as store:
        store.ingest_result(system, olap_analytics(), olap_result, seed=0)
        yield store


class TestStore:
    def test_ingest_and_list(self, kb, system):
        records = kb.sessions(system_kind="dbms")
        assert len(records) == 1
        record = records[0]
        assert record.workload_name == olap_analytics().name
        assert record.tuner_name == "random-search"
        assert record.seed == 0
        assert record.n_runs == 10
        assert math.isfinite(record.best_runtime_s)
        assert record.space_names == tuple(system.config_space.names())
        assert record.fingerprint is not None

    def test_history_roundtrip(self, kb, system, olap_result):
        record = kb.sessions()[0]
        history = kb.history(record.session_id, system.config_space)
        assert len(history) == len(olap_result.history)
        assert history.best_runtime() == pytest.approx(
            olap_result.history.best_runtime()
        )
        best = history.best()
        assert best.config == olap_result.best_config

    def test_filters(self, kb):
        assert kb.sessions(system_kind="spark") == []
        assert kb.sessions(workload_name="nope") == []
        assert kb.sessions(space_names=("wrong", "names")) == []

    def test_version_changes_on_ingest(self, kb, system, olap_result):
        v0 = kb.version()
        kb.ingest_result(system, oltp_orders(), olap_result, seed=1)
        assert kb.version() != v0
        assert len(kb) == 2

    def test_unknown_session_raises(self, kb, system):
        with pytest.raises(KeyError):
            kb.history(999, system.config_space)

    def test_bad_payload_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.ingest_payload({"kind": "not-a-session"})

    def test_infinite_best_runtime_roundtrips(self, kb, system):
        history = TuningHistory()
        history.record(Observation(
            system.default_configuration(), Measurement.failure(), tag="boom"
        ))
        sid = kb.ingest_history(system, olap_analytics(), history)
        record = [r for r in kb.sessions() if r.session_id == sid][0]
        assert math.isinf(record.best_runtime_s)
        rebuilt = kb.history(sid, system.config_space)
        assert not rebuilt[0].ok

    def test_file_backed_store_persists(self, tmp_path, system, olap_result):
        path = str(tmp_path / "tuning.kb")
        with KnowledgeBase(path) as store:
            store.ingest_result(system, olap_analytics(), olap_result)
        with KnowledgeBase(path) as store:
            assert len(store) == 1
            record = store.sessions()[0]
            history = store.history(record.session_id, system.config_space)
            assert len(history) == len(olap_result.history)

    def test_concurrent_ingest_is_safe(self, system, olap_result, tmp_path):
        with KnowledgeBase(str(tmp_path / "c.kb")) as store:
            def ingest():
                for _ in range(5):
                    store.ingest_result(
                        system, olap_analytics(), olap_result
                    )

            threads = [threading.Thread(target=ingest) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(store) == 20

    def test_summary_groups_by_workload(self, kb, system, olap_result):
        kb.ingest_result(system, oltp_orders(), olap_result)
        summary = kb.summary()
        assert summary["n_sessions"] == 2
        names = {w["workload"] for w in summary["workloads"]}
        assert names == {olap_analytics().name, oltp_orders().name}


class TestFingerprint:
    def test_probe_matches_history_default(self, system):
        fp_probe = probe_fingerprint(system, olap_analytics())
        history = TuningHistory()
        history.record(Observation(
            system.default_configuration(),
            system.run(olap_analytics(), system.default_configuration()),
            tag="default",
        ))
        fp_hist = fingerprint_from_history(history)
        assert fp_hist.probe_runtime_s == pytest.approx(fp_probe.probe_runtime_s)
        assert fp_hist.metrics == fp_probe.metrics

    def test_jsonable_roundtrip_inf(self):
        fp = WorkloadFingerprint(metrics={"a": 1.0}, probe_runtime_s=math.inf)
        back = WorkloadFingerprint.from_jsonable(fp.to_jsonable())
        assert math.isinf(back.probe_runtime_s)
        assert back.metrics == {"a": 1.0}

    def test_rank_similar_prefers_same_workload(self, system):
        fps = {
            name: probe_fingerprint(system, wl)
            for name, wl in [
                ("olap", olap_analytics()),
                ("oltp", oltp_orders()),
                ("htap", htap_mixed()),
            ]
        }
        ranked = rank_similar(fps["olap"], list(fps.items()))
        assert ranked[0][0] == "olap"
        assert ranked[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_empty_candidates(self):
        assert rank_similar(WorkloadFingerprint(), []) == []


class TestTransferPrior:
    def test_prior_excludes_target_and_scales(self, kb, system):
        prior = warm_start_prior(
            kb, system, htap_mixed(),
            exclude_workloads=(htap_mixed().name,),
        )
        assert len(prior) > 0
        assert all(
            row.source_workload == olap_analytics().name for row in prior.rows
        )
        X, y = prior.training_data(system.config_space)
        assert X.shape == (len(prior), system.config_space.dimension)
        assert np.all(np.isfinite(y)) and np.all(y > 0)

    def test_prior_best_configs_are_distinct_and_feasible(self, kb, system):
        prior = warm_start_prior(kb, system, htap_mixed())
        configs = prior.best_configs(system.config_space, k=3)
        assert 1 <= len(configs) <= 3
        assert len(set(configs)) == len(configs)

    def test_empty_kb_gives_empty_prior(self, system):
        with KnowledgeBase(":memory:") as empty:
            prior = warm_start_prior(empty, system, htap_mixed())
        assert len(prior) == 0
        assert prior.best_configs(system.config_space) == []
        X, y = prior.training_data(system.config_space)
        assert X.shape[0] == 0 and y.shape[0] == 0

    def test_summary_is_jsonable(self, kb, system):
        import json

        prior = warm_start_prior(kb, system, htap_mixed())
        blob = json.dumps(prior.summary())
        assert "matched_workloads" in blob


class TestWarmStartTuning:
    def test_prior_never_charged_to_budget(self, kb, system):
        prior = warm_start_prior(kb, system, htap_mixed())
        budget = Budget(max_runs=8)
        result = BayesOptTuner(n_init=2, n_candidates=40, warm_start=True).tune(
            system, htap_mixed(), budget,
            rng=np.random.default_rng(5), prior=prior,
        )
        assert result.n_real_runs <= budget.max_runs
        assert result.extras["warm_start"]["n_prior_observations"] == len(prior)
        tags = [o.tag for o in result.history.real_observations()]
        assert any(t.startswith("prior-") for t in tags)

    def test_cold_tuner_ignores_prior(self, kb, system):
        prior = warm_start_prior(kb, system, htap_mixed())
        cold = BayesOptTuner(n_init=2, n_candidates=40)  # warm_start=False
        result = cold.tune(
            system, htap_mixed(), Budget(max_runs=6),
            rng=np.random.default_rng(5), prior=prior,
        )
        assert "warm_start" not in result.extras
        tags = [o.tag for o in result.history.real_observations()]
        assert not any(t.startswith("prior-") for t in tags)

    def test_warm_equals_cold_without_prior(self, system):
        # warm_start=True with no prior must reproduce cold behaviour.
        budget = Budget(max_runs=8)
        warm = ITunedTuner(n_init=3, n_candidates=40, warm_start=True).tune(
            system, htap_mixed(), budget, rng=np.random.default_rng(9)
        )
        cold = ITunedTuner(n_init=3, n_candidates=40).tune(
            system, htap_mixed(), budget, rng=np.random.default_rng(9)
        )
        assert warm.best_runtime_s == cold.best_runtime_s
        assert warm.best_config == cold.best_config


class TestOtterTuneKb:
    def test_repository_from_kb(self, kb, system, olap_result):
        kb.ingest_result(system, oltp_orders(), olap_result, seed=2)
        repo = OtterTuneRepository.from_kb(kb, system)
        assert {w.name for w in repo.workloads} == {
            olap_analytics().name, oltp_orders().name
        }
        assert repo.metric_names == list(system.metric_names)

    def test_from_kb_excludes_target(self, kb, system):
        repo = OtterTuneRepository.from_kb(
            kb, system, min_samples=1,
            exclude_workloads=(),
        )
        with pytest.raises(Exception):
            OtterTuneRepository.from_kb(
                kb, system, exclude_workloads=(olap_analytics().name,)
            )
        assert repo.workloads

    def test_build_repository_persists_to_kb(self, system):
        with KnowledgeBase(":memory:") as store:
            repo = build_repository(
                system, [olap_analytics()], n_samples=12,
                rng=np.random.default_rng(3), kb=store,
            )
            assert repo.workloads
            record = store.sessions()[0]
            assert record.tuner_name == "repository-sampler"
            assert record.n_runs == 12
            # the persisted sweep is usable as repository data again
            rebuilt = OtterTuneRepository.from_kb(store, system)
            assert rebuilt.workloads[0].X.shape[0] > 0
