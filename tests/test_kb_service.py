"""Tests for the recommendation service (in-process and over HTTP)."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import Budget
from repro.kb import (
    KnowledgeBase,
    RecommendationService,
    make_server,
    probe_fingerprint,
)
from repro.kb.service import ServiceError
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics, oltp_orders
from repro.tuners import RandomSearchTuner


@pytest.fixture(scope="module")
def kb():
    system = DbmsSimulator()
    store = KnowledgeBase(":memory:")
    for seed, workload in enumerate([olap_analytics(), oltp_orders()]):
        result = RandomSearchTuner().tune(
            system, workload, Budget(max_runs=8), np.random.default_rng(seed)
        )
        store.ingest_result(system, workload, result, seed=seed)
    yield store
    store.close()


@pytest.fixture(scope="module")
def server(kb):
    srv = make_server(kb, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _post(server, path, payload):
    host, port = server.server_address[:2]
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def _get(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as resp:
        return resp.status, json.loads(resp.read())


class TestServiceInProcess:
    def test_recommend_by_workload_name(self, kb):
        service = RecommendationService(kb)
        out = service.recommend({"workload": olap_analytics().name})
        assert out["n_candidates"] == 2
        assert out["matches"][0]["workload"] == olap_analytics().name
        assert out["recommended"] is not None
        assert out["recommended"]["from_workload"] == olap_analytics().name

    def test_recommend_by_fingerprint(self, kb):
        fp = probe_fingerprint(DbmsSimulator(), oltp_orders())
        service = RecommendationService(kb)
        out = service.recommend({"fingerprint": fp.to_jsonable(), "k": 1})
        assert len(out["matches"]) == 1
        assert out["matches"][0]["workload"] == oltp_orders().name

    def test_bad_requests(self, kb):
        service = RecommendationService(kb)
        with pytest.raises(ServiceError):
            service.recommend({})
        with pytest.raises(ServiceError):
            service.recommend({"workload": "never-stored"})
        with pytest.raises(ServiceError):
            service.recommend({"workload": "x", "k": 0})
        with pytest.raises(ServiceError):
            service.ingest({"kind": "nope"})

    def test_index_cache_tracks_version(self, kb):
        service = RecommendationService(kb)
        service.recommend({"workload": olap_analytics().name})
        v_before = service._index_version
        service.recommend({"workload": olap_analytics().name})
        assert service._index_version == v_before  # cache reused


class TestServiceHttp:
    def test_workloads_endpoint(self, server, kb):
        status, body = _get(server, "/workloads")
        assert status == 200
        assert body["n_sessions"] == len(kb)

    def test_recommend_endpoint(self, server):
        status, body = _post(
            server, "/recommend", {"workload": olap_analytics().name}
        )
        assert status == 200
        assert body["recommended"]["from_workload"] == olap_analytics().name
        assert isinstance(body["recommended"]["config"], dict)

    def test_ingest_then_recommend(self, kb):
        # separate server over a private kb so module fixtures stay clean
        system = DbmsSimulator()
        result = RandomSearchTuner().tune(
            system, htap_mixed(), Budget(max_runs=6), np.random.default_rng(3)
        )
        with KnowledgeBase(":memory:") as store:
            payload = store.session_payload(system, htap_mixed(), result, seed=3)
            srv = make_server(store, port=0)
            thread = threading.Thread(target=srv.serve_forever, daemon=True)
            thread.start()
            try:
                status, body = _post(srv, "/ingest", payload)
                assert status == 200 and body["n_sessions"] == 1
                status, body = _post(
                    srv, "/recommend", {"workload": htap_mixed().name}
                )
                assert status == 200
                assert body["recommended"]["from_session"] == body[
                    "matches"
                ][0]["session_id"]
            finally:
                srv.shutdown()
                srv.server_close()
                thread.join(timeout=5)

    def test_http_error_codes(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/recommend", {})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404

    def test_recommend_under_concurrent_clients(self, server):
        """Acceptance: /recommend answers correctly for >=8 concurrent
        client threads — same request, identical correct answers."""
        request = {"workload": olap_analytics().name, "k": 2}

        def call(_):
            return _post(server, "/recommend", request)

        with ThreadPoolExecutor(max_workers=12) as pool:
            outcomes = list(pool.map(call, range(24)))

        assert len(outcomes) == 24
        statuses = {status for status, _ in outcomes}
        assert statuses == {200}
        bodies = [body for _, body in outcomes]
        reference = bodies[0]
        assert reference["recommended"]["from_workload"] == olap_analytics().name
        assert all(body == reference for body in bodies)

    def test_mixed_concurrent_traffic(self, server, kb):
        """Reads against different endpoints interleave without cross-talk."""
        def recommend(_):
            return ("rec", _post(
                server, "/recommend", {"workload": oltp_orders().name}
            ))

        def workloads(_):
            return ("wl", _get(server, "/workloads"))

        jobs = [recommend, workloads] * 8
        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(lambda f: f(None), jobs))

        for kind, (status, body) in outcomes:
            assert status == 200
            if kind == "rec":
                assert body["recommended"]["from_workload"] == oltp_orders().name
            else:
                assert body["n_sessions"] == len(kb)
