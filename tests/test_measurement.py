"""Tests for measurements, observations, and tuning histories."""

import math

import numpy as np
import pytest

from repro.core.measurement import Measurement, Observation, TuningHistory
from repro.core.parameters import ConfigurationSpace, NumericParameter


@pytest.fixture
def space():
    return ConfigurationSpace([NumericParameter("x", 5, 0, 10)])


def obs(space, x, runtime, source="real", failed=False, **metrics):
    m = (
        Measurement.failure()
        if failed
        else Measurement(runtime_s=runtime, metrics=metrics)
    )
    return Observation(space.partial({"x": x}), m, source=source)


class TestMeasurement:
    def test_basic(self):
        m = Measurement(runtime_s=2.0, metrics={"a": 1.0})
        assert m.ok and m.metric("a") == 1.0 and m.metric("b", 9.0) == 9.0

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            Measurement(runtime_s=-1.0)

    def test_nan_runtime_rejected(self):
        with pytest.raises(ValueError):
            Measurement(runtime_s=float("nan"))

    def test_failure_is_inf(self):
        m = Measurement.failure()
        assert m.failed and math.isinf(m.runtime_s) and not m.ok

    def test_failed_flag_forces_inf(self):
        m = Measurement(runtime_s=5.0, failed=True)
        assert math.isinf(m.runtime_s)

    def test_metric_vector(self):
        m = Measurement(runtime_s=1.0, metrics={"a": 1.0, "b": 2.0})
        assert np.allclose(m.metric_vector(["b", "a", "zzz"]), [2.0, 1.0, 0.0])


class TestTuningHistory:
    def test_best_ignores_failures_and_models(self, space):
        h = TuningHistory()
        h.record(obs(space, 1, 10.0))
        h.record(obs(space, 2, 5.0, source="model"))
        h.record(obs(space, 3, 0, failed=True))
        h.record(obs(space, 4, 7.0))
        best = h.best()
        assert best.runtime_s == 7.0
        assert best.config["x"] == 4

    def test_best_none_when_empty(self):
        assert TuningHistory().best() is None
        assert math.isinf(TuningHistory().best_runtime())

    def test_incumbent_trajectory_monotone(self, space):
        h = TuningHistory()
        for i, r in enumerate([10.0, 12.0, 6.0, 8.0]):
            h.record(obs(space, i, r))
        traj = h.incumbent_trajectory()
        assert [t[0] for t in traj] == [1, 2, 3, 4]
        values = [t[1] for t in traj]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 6.0

    def test_trajectory_counts_failures(self, space):
        h = TuningHistory()
        h.record(obs(space, 0, 0, failed=True))
        h.record(obs(space, 1, 4.0))
        traj = h.incumbent_trajectory()
        assert traj[0] == (1, math.inf)
        assert traj[1] == (2, 4.0)

    def test_model_observations_not_counted(self, space):
        h = TuningHistory()
        h.record(obs(space, 0, 3.0, source="model"))
        assert h.incumbent_trajectory() == []
        assert h.real_observations() == []

    def test_total_runtime_charges_failures_via_metric(self, space):
        h = TuningHistory()
        h.record(obs(space, 0, 10.0))
        failed = Observation(
            space.partial({"x": 1}),
            Measurement(
                runtime_s=float("inf"),
                failed=True,
                metrics={"elapsed_before_failure_s": 30.0},
            ),
        )
        h.record(failed)
        assert h.total_runtime_s() == pytest.approx(40.0)

    def test_to_arrays(self, space):
        h = TuningHistory()
        h.record(obs(space, 2, 5.0, m1=1.0))
        h.record(obs(space, 8, 3.0, m1=2.0))
        X, y, M = h.to_arrays(["m1"])
        assert X.shape == (2, 1)
        assert list(y) == [5.0, 3.0]
        assert list(M[:, 0]) == [1.0, 2.0]

    def test_to_arrays_empty(self):
        X, y, M = TuningHistory().to_arrays(["m"])
        assert X.shape[0] == 0 and y.shape == (0,)

    def test_summary(self, space):
        h = TuningHistory()
        h.record(obs(space, 0, 5.0))
        h.record(obs(space, 1, 0, failed=True))
        s = h.summary()
        assert s["n_real_runs"] == 2
        assert s["n_failures"] == 1
        assert s["best_runtime_s"] == 5.0
