"""Edge-case coverage across modules that larger tests skim over."""

import math

import numpy as np
import pytest

from repro.core import Budget, Measurement
from repro.core.parameters import (
    ConfigurationSpace,
    NumericParameter,
    make_constraint,
)
from repro.core.registry import register_tuner
from repro.core.session import TuningSession
from repro.exceptions import ReproError, ValidationError
from repro.mlkit.sampling import halton, latin_hypercube, uniform
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, olap_analytics
from repro.systems.hadoop import HadoopSimulator, terasort
from repro.tuners import GridSearchTuner
from repro.tuners.common import candidate_pool, penalized_runtime


class TestRegistryGuards:
    def test_double_registration_rejected(self):
        with pytest.raises(ReproError):
            register_tuner("random-search")(object)


class TestSamplingEdges:
    def test_zero_samples(self):
        rng = np.random.default_rng(0)
        assert uniform(0, 3, rng).shape == (0, 3)
        assert latin_hypercube(0, 3, rng).shape == (0, 3)
        assert halton(0, 3).shape == (0, 3)

    def test_single_sample_lhs(self):
        X = latin_hypercube(1, 4, np.random.default_rng(0))
        assert X.shape == (1, 4)
        assert (0 <= X).all() and (X <= 1).all()


class TestSessionTimeAccounting:
    def test_failed_runs_charge_partial_elapsed(self):
        system = DbmsSimulator(Cluster.uniform(2))
        wl = olap_analytics(0.3)
        session = TuningSession(system, wl, Budget(max_runs=5), np.random.default_rng(0))
        oom = system.config_space.partial({
            "work_mem_mb": 4096, "hash_mem_multiplier": 8, "max_connections": 1000,
        })
        before = session.experiment_time_s
        measurement = session.evaluate(oom)
        assert not measurement.ok
        assert session.experiment_time_s == pytest.approx(before + 30.0)

    def test_time_budget_blocks_after_failures(self):
        system = DbmsSimulator(Cluster.uniform(2))
        wl = olap_analytics(0.3)
        session = TuningSession(
            system, wl, Budget(max_runs=100, max_experiment_time_s=31.0),
            np.random.default_rng(0),
        )
        oom = system.config_space.partial({
            "work_mem_mb": 4096, "hash_mem_multiplier": 8, "max_connections": 1000,
        })
        session.evaluate(oom)
        session.evaluate(oom)
        assert not session.can_run()


class TestGridSearchInfeasibleCorners:
    def test_constrained_grid_skips_invalid_combos(self):
        system = HadoopSimulator(Cluster.uniform(2))
        # io_sort_mb x map_memory grid hits the sort-buffer constraint
        # on (2048 sort, 256 memory)-style corners; they must be skipped
        # silently, not crash.
        tuner = GridSearchTuner(
            knobs=["io_sort_mb", "mapreduce_map_memory_mb"], levels=3
        )
        result = tuner.tune(
            system, terasort(2.0), Budget(max_runs=20), np.random.default_rng(0)
        )
        # 3x3 grid minus infeasible corners, plus the default run.
        assert 2 <= result.n_real_runs <= 10


class TestCommonHelpers:
    def test_penalized_runtime_passthrough(self):
        from repro.core.measurement import TuningHistory

        assert penalized_runtime(Measurement(runtime_s=5.0), TuningHistory()) == 5.0

    def test_penalized_runtime_for_failure_without_history(self):
        from repro.core.measurement import TuningHistory

        penalty = penalized_runtime(Measurement.failure(), TuningHistory())
        assert math.isfinite(penalty) and penalty > 0

    def test_candidate_pool_anchors_stay_local(self):
        system = DbmsSimulator()
        space = system.config_space
        anchor = space.default_configuration()
        rng = np.random.default_rng(0)
        pool = candidate_pool(space, rng, n_random=0, anchors=[anchor], jitter=0.02)
        assert pool
        base = anchor.to_array()
        for config in pool:
            assert np.abs(config.to_array() - base).max() < 0.25


class TestConstraintAnnotations:
    def test_make_constraint_records_touches(self):
        c = make_constraint("c", ["a", "b"], lambda v: True)
        assert c.touches == ("a", "b")

    def test_unsatisfiable_space_sampling_raises(self):
        space = ConfigurationSpace([NumericParameter("x", 5, 0, 10)])
        space.add_constraint(make_constraint("never", ["x"], lambda v: False))
        with pytest.raises(ValidationError):
            space.sample_configuration(np.random.default_rng(0), max_tries=10)


class TestCliExperimentIds:
    @pytest.mark.parametrize("key", ["E16"])
    def test_new_experiments_reachable(self, key, capsys):
        from repro.cli import main

        assert main(["experiment", key, "--quick"]) == 0
        assert f"[{key}]" in capsys.readouterr().out
