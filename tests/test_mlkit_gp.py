"""Tests for kernels, GP regression, and acquisition functions."""

import numpy as np
import pytest

from repro.exceptions import ModelNotFitted
from repro.mlkit.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    maximize_acquisition,
    probability_of_improvement,
)
from repro.mlkit.gp import GaussianProcess
from repro.mlkit.kernels import RBF, ConstantTimes, Matern52, Sum


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def data(rng):
    X = rng.random((25, 2))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 10.0
    return X, y


class TestKernels:
    @pytest.mark.parametrize("kernel", [RBF(0.3), Matern52(0.3)])
    def test_diagonal_is_variance(self, kernel, rng):
        X = rng.random((10, 3))
        K = kernel(X)
        assert np.allclose(np.diag(K), kernel.diag(X))
        assert np.allclose(np.diag(K), 1.0)

    @pytest.mark.parametrize("kernel", [RBF(0.3), Matern52(0.3)])
    def test_psd(self, kernel, rng):
        X = rng.random((15, 3))
        eigs = np.linalg.eigvalsh(kernel(X))
        assert eigs.min() > -1e-8

    def test_symmetry(self, rng):
        X = rng.random((8, 2))
        K = RBF(0.5)(X)
        assert np.allclose(K, K.T)

    def test_decay_with_distance(self):
        k = RBF(0.2)
        near = k(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = k(np.array([[0.0]]), np.array([[0.9]]))[0, 0]
        assert near > far

    def test_ard_lengthscales(self, rng):
        k = RBF(lengthscale=[0.1, 10.0])
        a = np.array([[0.0, 0.0]])
        moved_sensitive = np.array([[0.3, 0.0]])
        moved_insensitive = np.array([[0.0, 0.3]])
        assert k(a, moved_sensitive)[0, 0] < k(a, moved_insensitive)[0, 0]

    def test_wrong_dims_rejected(self, rng):
        k = RBF(lengthscale=[0.1, 0.2])
        with pytest.raises(ValueError):
            k(rng.random((4, 3)))

    def test_composed_kernels(self, rng):
        X = rng.random((5, 2))
        base = RBF(0.3)
        assert np.allclose(ConstantTimes(2.0, base)(X), 2.0 * base(X))
        assert np.allclose(Sum(base, base)(X), 2.0 * base(X))

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_lengthscale(self, bad):
        with pytest.raises(ValueError):
            RBF(lengthscale=bad)


class TestGaussianProcess:
    def test_interpolates_training_data(self, data):
        X, y = data
        gp = GaussianProcess(noise=1e-6, optimize=False).fit(X, y)
        pred, _ = gp.predict(X)
        assert np.abs(pred - y).max() < 0.05

    def test_uncertainty_grows_away_from_data(self, data):
        X, y = data
        gp = GaussianProcess(optimize=False).fit(X, y)
        _, std_near = gp.predict(X[:1], return_std=True)
        _, std_far = gp.predict(np.array([[5.0, 5.0]]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_handles_offset_targets(self, rng):
        X = rng.random((15, 1))
        y = 1e4 + X[:, 0]
        gp = GaussianProcess().fit(X, y)
        pred, _ = gp.predict(X)
        assert np.abs(pred - y).max() < 1.0

    def test_hyperparameter_optimization_improves_ll(self, data):
        X, y = data
        fixed = GaussianProcess(optimize=False, noise=0.1)
        fixed.fit(X, y)
        opt = GaussianProcess(optimize=True).fit(X, y)
        assert opt.log_marginal_likelihood_ >= fixed.log_marginal_likelihood_ - 1e-6

    def test_predict_before_fit_raises(self):
        with pytest.raises(ModelNotFitted):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((0, 2)), np.zeros(0))

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianProcess().fit(rng.random((5, 2)), rng.random(4))

    def test_constant_targets(self, rng):
        X = rng.random((10, 2))
        gp = GaussianProcess().fit(X, np.full(10, 7.0))
        pred, _ = gp.predict(X[:3])
        assert np.allclose(pred, 7.0, atol=1e-6)

    def test_posterior_samples_shape_and_spread(self, data, rng):
        X, y = data
        gp = GaussianProcess(optimize=False).fit(X, y)
        far = np.array([[3.0, 3.0], [4.0, 4.0]])
        draws = gp.sample_posterior(far, 64, rng)
        assert draws.shape == (64, 2)
        assert draws.std(axis=0).min() > 0.01

    def test_duplicate_points_no_crash(self, rng):
        X = np.vstack([rng.random((5, 2))] * 3)
        y = np.concatenate([rng.random(5)] * 3)
        gp = GaussianProcess().fit(X, y)
        gp.predict(X[:2], return_std=True)


class TestAcquisition:
    def test_ei_zero_when_certain_and_worse(self):
        ei = expected_improvement(np.array([10.0]), np.array([0.0]), best=5.0)
        assert ei[0] == 0.0

    def test_ei_positive_when_certain_and_better(self):
        ei = expected_improvement(np.array([3.0]), np.array([0.0]), best=5.0)
        assert ei[0] == pytest.approx(2.0)

    def test_ei_increases_with_uncertainty(self):
        low = expected_improvement(np.array([6.0]), np.array([0.1]), best=5.0)
        high = expected_improvement(np.array([6.0]), np.array([2.0]), best=5.0)
        assert high[0] > low[0]

    def test_ei_nonnegative(self):
        rng = np.random.default_rng(1)
        ei = expected_improvement(rng.normal(size=100), np.abs(rng.normal(size=100)), 0.0)
        assert (ei >= 0).all()

    def test_pi_bounds(self):
        rng = np.random.default_rng(1)
        pi = probability_of_improvement(
            rng.normal(size=100), np.abs(rng.normal(size=100)), 0.0
        )
        assert (pi >= 0).all() and (pi <= 1).all()

    def test_pi_degenerate(self):
        pi = probability_of_improvement(np.array([1.0, -1.0]), np.zeros(2), 0.0)
        assert list(pi) == [0.0, 1.0]

    def test_lcb_prefers_low_mean_high_std(self):
        scores = lower_confidence_bound(np.array([5.0, 5.0]), np.array([0.0, 1.0]))
        assert scores[1] > scores[0]

    def test_maximize_acquisition_picks_argmax(self, data):
        X, y = data
        gp = GaussianProcess().fit(X, y)
        candidates = np.random.default_rng(2).random((50, 2))
        idx, scores = maximize_acquisition(gp, y.min(), candidates, kind="ei")
        assert idx == int(np.argmax(scores))

    def test_unknown_kind(self, data):
        X, y = data
        gp = GaussianProcess().fit(X, y)
        with pytest.raises(ValueError):
            maximize_acquisition(gp, 0.0, X, kind="bogus")
