"""Tests for scalers, linear models, clustering, factor analysis, MLP,
and tree ensembles."""

import numpy as np
import pytest

from repro.exceptions import ModelNotFitted
from repro.mlkit.cluster import KMeans, select_k_by_silhouette
from repro.mlkit.factor import PCA, FactorAnalysis
from repro.mlkit.linear import Lasso, RidgeRegression, lasso_path, lasso_rank_features
from repro.mlkit.neural import MLPRegressor
from repro.mlkit.scaler import MinMaxScaler, StandardScaler
from repro.mlkit.tree import RandomForest, RegressionTree


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestScalers:
    def test_standard_scaler_stats(self, rng):
        X = rng.normal(5.0, 3.0, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_standard_scaler_constant_column(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0)

    def test_standard_scaler_roundtrip(self, rng):
        X = rng.normal(size=(20, 3))
        s = StandardScaler().fit(X)
        assert np.allclose(s.inverse_transform(s.transform(X)), X)

    def test_minmax_range(self, rng):
        X = rng.normal(size=(50, 3)) * 10
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0 and Z.max() <= 1

    def test_not_fitted(self):
        with pytest.raises(ModelNotFitted):
            StandardScaler().transform(np.ones((2, 2)))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))


class TestLinear:
    def test_ridge_recovers_exact_line(self):
        X = np.arange(10.0)[:, None]
        y = 3.0 * X[:, 0] + 2.0
        model = RidgeRegression(alpha=1e-8).fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0, abs=1e-6)
        assert model.intercept_ == pytest.approx(2.0, abs=1e-6)

    def test_ridge_shrinks_with_alpha(self, rng):
        X = rng.normal(size=(50, 3))
        y = X @ np.array([5.0, 0.0, 0.0]) + rng.normal(0, 0.1, 50)
        small = RidgeRegression(alpha=1e-6).fit(X, y).coef_[0]
        big = RidgeRegression(alpha=1e3).fit(X, y).coef_[0]
        assert abs(big) < abs(small)

    def test_lasso_produces_sparsity(self, rng):
        X = rng.normal(size=(80, 10))
        y = 4 * X[:, 0] - 3 * X[:, 5] + rng.normal(0, 0.05, 80)
        coef = Lasso(alpha=0.3).fit(X, y).coef_
        nonzero = np.nonzero(np.abs(coef) > 1e-6)[0]
        assert 0 in nonzero and 5 in nonzero
        assert len(nonzero) <= 4

    def test_lasso_predict_reasonable(self, rng):
        X = rng.normal(size=(80, 4))
        y = 2 * X[:, 1] + 1.0
        model = Lasso(alpha=0.01).fit(X, y)
        assert np.abs(model.predict(X) - y).mean() < 0.3

    def test_lasso_path_monotone_alphas(self, rng):
        X = rng.normal(size=(40, 5))
        y = X[:, 0] + rng.normal(0, 0.1, 40)
        alphas, coefs = lasso_path(X, y, n_alphas=10)
        assert (np.diff(alphas) < 0).all()
        assert coefs.shape == (10, 5)
        # At the strongest alpha everything is zero.
        assert np.allclose(coefs[0], 0, atol=1e-8)

    def test_lasso_rank_features_importance_order(self, rng):
        X = rng.normal(size=(120, 6))
        y = 10 * X[:, 3] + 2 * X[:, 1] + rng.normal(0, 0.1, 120)
        order = lasso_rank_features(X, y)
        assert order[0] == 3
        assert order[1] == 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Lasso(alpha=-1)
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1)


class TestKMeans:
    def test_separated_clusters_recovered(self, rng):
        a = rng.normal(0, 0.1, size=(20, 2))
        b = rng.normal(5, 0.1, size=(20, 2))
        model = KMeans(k=2).fit(np.vstack([a, b]), rng)
        labels = model.labels_
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_predict_matches_fit_labels(self, rng):
        X = rng.normal(size=(30, 3))
        model = KMeans(k=3).fit(X, rng)
        assert np.array_equal(model.predict(X), model.labels_)

    def test_representatives_are_members(self, rng):
        X = rng.normal(size=(30, 2))
        model = KMeans(k=4).fit(X, rng)
        reps = model.representatives(X)
        assert len(reps) == 4
        assert all(0 <= r < 30 for r in reps)

    def test_too_few_points(self, rng):
        with pytest.raises(ValueError):
            KMeans(k=5).fit(np.ones((3, 2)), rng)

    def test_select_k_finds_two(self, rng):
        a = rng.normal(0, 0.2, size=(15, 2))
        b = rng.normal(6, 0.2, size=(15, 2))
        k, model = select_k_by_silhouette(np.vstack([a, b]), k_max=6, rng=rng)
        assert k == 2


class TestFactor:
    def test_pca_variance_ordering(self, rng):
        X = np.column_stack([
            rng.normal(0, 10, 100),
            rng.normal(0, 1, 100),
            rng.normal(0, 0.1, 100),
        ])
        pca = PCA(n_components=3).fit(X)
        evr = pca.explained_variance_ratio_
        assert (np.diff(evr) <= 1e-9).all()
        assert evr[0] > 0.3

    def test_pca_transform_shape(self, rng):
        X = rng.normal(size=(30, 5))
        Z = PCA(n_components=2).fit_transform(X)
        assert Z.shape == (30, 2)

    def test_factor_analysis_groups_correlated_features(self, rng):
        latent = rng.normal(size=(200, 1))
        X = np.column_stack([
            latent[:, 0] + rng.normal(0, 0.05, 200),
            latent[:, 0] * 2 + rng.normal(0, 0.05, 200),
            rng.normal(size=200),
        ])
        fa = FactorAnalysis(n_factors=2).fit(X)
        load = fa.loadings_
        # Features 0 and 1 load on the same factor direction.
        cos = np.dot(load[0], load[1]) / (
            np.linalg.norm(load[0]) * np.linalg.norm(load[1]) + 1e-12
        )
        assert abs(cos) > 0.9

    def test_factor_transform_shape(self, rng):
        X = rng.normal(size=(50, 6))
        fa = FactorAnalysis(n_factors=2).fit(X)
        assert fa.transform(X).shape == (50, 2)

    def test_not_fitted(self):
        with pytest.raises(ModelNotFitted):
            FactorAnalysis(2).transform(np.ones((2, 3)))


class TestNeural:
    def test_fits_nonlinear_function(self, rng):
        X = rng.random((120, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        model = MLPRegressor(hidden=(32, 32), epochs=400, seed=0).fit(X, y)
        pred = model.predict(X)
        assert np.abs(pred - y).mean() < 0.1

    def test_loss_decreases(self, rng):
        X = rng.random((60, 2))
        y = X[:, 0] * 2
        model = MLPRegressor(epochs=200).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_deterministic_given_seed(self, rng):
        X = rng.random((40, 2))
        y = X[:, 0]
        a = MLPRegressor(epochs=50, seed=3).fit(X, y).predict(X[:5])
        b = MLPRegressor(epochs=50, seed=3).fit(X, y).predict(X[:5])
        assert np.allclose(a, b)

    def test_not_fitted(self):
        with pytest.raises(ModelNotFitted):
            MLPRegressor().predict(np.ones((1, 2)))


class TestTrees:
    def test_tree_fits_step_function(self, rng):
        X = rng.random((200, 1))
        y = (X[:, 0] > 0.5).astype(float) * 10
        tree = RegressionTree(max_depth=3).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).mean() < 0.5

    def test_tree_importance_targets_signal(self, rng):
        X = rng.random((200, 4))
        y = 5 * X[:, 2] + rng.normal(0, 0.05, 200)
        tree = RegressionTree(max_depth=5).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2

    def test_forest_beats_constant_predictor(self, rng):
        X = rng.random((150, 3))
        y = np.sin(4 * X[:, 0]) + X[:, 1]
        forest = RandomForest(n_trees=20, seed=0).fit(X, y)
        resid = np.abs(forest.predict(X) - y).mean()
        baseline = np.abs(y - y.mean()).mean()
        assert resid < baseline * 0.5

    def test_forest_uncertainty_positive(self, rng):
        X = rng.random((80, 2))
        y = X[:, 0]
        forest = RandomForest(n_trees=10, seed=0).fit(X, y)
        _, std = forest.predict_std(rng.random((10, 2)))
        assert (std >= 0).all() and std.max() > 0

    def test_forest_importance_normalized(self, rng):
        X = rng.random((100, 5))
        y = X[:, 0] + 2 * X[:, 4]
        forest = RandomForest(n_trees=15, seed=1).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_not_fitted(self):
        with pytest.raises(ModelNotFitted):
            RegressionTree().predict(np.ones((1, 2)))
        with pytest.raises(ModelNotFitted):
            RandomForest().predict(np.ones((1, 2)))
