"""Tests for sampling designs and DoE matrices."""

import numpy as np
import pytest

from repro.mlkit.doe import (
    foldover,
    full_factorial_two_level,
    main_effects,
    plackett_burman,
)
from repro.mlkit.sampling import (
    halton,
    latin_hypercube,
    maximin_latin_hypercube,
    uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestSampling:
    def test_uniform_shape_and_range(self, rng):
        X = uniform(50, 4, rng)
        assert X.shape == (50, 4)
        assert (X >= 0).all() and (X < 1).all()

    def test_lhs_stratification(self, rng):
        n = 20
        X = latin_hypercube(n, 3, rng)
        for j in range(3):
            strata = np.floor(X[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_lhs_empty(self, rng):
        assert latin_hypercube(0, 3, rng).shape == (0, 3)

    def test_maximin_beats_random_lhs_on_average(self, rng):
        def min_dist(X):
            d = np.linalg.norm(X[:, None] - X[None, :], axis=-1)
            np.fill_diagonal(d, np.inf)
            return d.min()

        mm = maximin_latin_hypercube(12, 3, rng, candidates=30)
        plain = latin_hypercube(12, 3, np.random.default_rng(99))
        assert min_dist(mm) >= min_dist(plain) * 0.8

    def test_halton_deterministic_and_low_discrepancy(self):
        a = halton(64, 2)
        b = halton(64, 2)
        assert np.allclose(a, b)
        # Each quadrant of the unit square gets roughly a quarter.
        counts = [
            ((a[:, 0] < 0.5) & (a[:, 1] < 0.5)).sum(),
            ((a[:, 0] >= 0.5) & (a[:, 1] < 0.5)).sum(),
            ((a[:, 0] < 0.5) & (a[:, 1] >= 0.5)).sum(),
            ((a[:, 0] >= 0.5) & (a[:, 1] >= 0.5)).sum(),
        ]
        assert max(counts) - min(counts) <= 6

    def test_halton_too_many_dims(self):
        with pytest.raises(ValueError):
            halton(10, 100)


class TestPlackettBurman:
    @pytest.mark.parametrize("k", [3, 7, 11, 15, 19, 23])
    def test_cyclic_sizes(self, k):
        design = plackett_burman(k)
        assert design.shape[1] == k
        assert design.shape[0] % 4 == 0
        assert set(np.unique(design)) <= {-1.0, 1.0}

    @pytest.mark.parametrize("k", [7, 11, 19])
    def test_orthogonality(self, k):
        design = plackett_burman(k)
        gram = design.T @ design
        n = design.shape[0]
        assert np.allclose(np.diag(gram), n)
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() <= 1e-9

    def test_balance(self):
        design = plackett_burman(11)
        assert np.allclose(design.sum(axis=0), 0)

    def test_large_factor_count_uses_hadamard(self):
        design = plackett_burman(29)
        assert design.shape == (32, 29)
        gram = design.T @ design
        assert np.allclose(np.diag(gram), 32)
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() <= 1e-9

    def test_invalid(self):
        with pytest.raises(ValueError):
            plackett_burman(0)


class TestFactorialAndEffects:
    def test_full_factorial(self):
        design = full_factorial_two_level(3)
        assert design.shape == (8, 3)
        assert len({tuple(row) for row in design}) == 8

    def test_full_factorial_limits(self):
        with pytest.raises(ValueError):
            full_factorial_two_level(0)
        with pytest.raises(ValueError):
            full_factorial_two_level(25)

    def test_foldover_doubles_runs(self):
        design = plackett_burman(7)
        folded = foldover(design)
        assert folded.shape[0] == 2 * design.shape[0]
        assert np.allclose(folded[: len(design)], -folded[len(design):])

    def test_main_effects_recover_linear_model(self):
        design = foldover(plackett_burman(7))
        coef = np.array([5.0, 0.0, -3.0, 0.0, 1.0, 0.0, 0.0])
        y = design @ coef
        effects = main_effects(design, y)
        assert np.allclose(effects, 2 * coef, atol=1e-9)

    def test_main_effects_rank_order(self):
        design = full_factorial_two_level(4)
        rng = np.random.default_rng(0)
        y = 10 * design[:, 0] + 3 * design[:, 2] + rng.normal(0, 0.1, len(design))
        effects = np.abs(main_effects(design, y))
        assert np.argmax(effects) == 0
        assert effects[2] > effects[1] and effects[2] > effects[3]

    def test_main_effects_shape_mismatch(self):
        with pytest.raises(ValueError):
            main_effects(np.ones((4, 2)), np.ones(3))
