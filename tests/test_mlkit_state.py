"""Vectorized tree prediction parity, scaler inverse transforms, and
model state round-trips backing the surrogate registry."""

import json

import numpy as np
import pytest

from repro.exceptions import ModelNotFitted
from repro.mlkit import (
    GaussianProcess,
    Lasso,
    MeanEnsemble,
    MinMaxScaler,
    MLPRegressor,
    RandomForest,
    RegressionTree,
    RidgeRegression,
    StandardScaler,
    dump_model,
    load_model,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def data(rng):
    X = rng.uniform(size=(120, 5))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.normal(size=120)
    return X, y


# ---------------------------------------------------------------------------
# Vectorized tree/forest prediction pinned against the scalar walk
# ---------------------------------------------------------------------------
class TestVectorizedTreeParity:
    def test_tree_predict_matches_scalar_bit_for_bit(self, data, rng):
        X, y = data
        tree = RegressionTree(max_depth=8).fit(X, y)
        queries = rng.uniform(size=(300, 5))
        np.testing.assert_array_equal(
            tree.predict(queries), tree.predict_scalar(queries)
        )

    def test_parity_on_training_rows_and_single_row(self, data):
        X, y = data
        tree = RegressionTree().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), tree.predict_scalar(X))
        one = X[3]
        np.testing.assert_array_equal(
            tree.predict(one), tree.predict_scalar(one)
        )

    def test_parity_exactly_on_split_thresholds(self, data):
        """Rows sitting exactly on a threshold take the <= branch in
        both implementations."""
        X, y = data
        tree = RegressionTree(max_depth=6).fit(X, y)
        state = tree.to_state()
        thresholds = [
            (f, t) for f, t in zip(state["feature"], state["threshold"])
            if f >= 0
        ]
        assert thresholds
        queries = np.tile(X[0], (len(thresholds), 1))
        for i, (feature, threshold) in enumerate(thresholds):
            queries[i, feature] = threshold
        np.testing.assert_array_equal(
            tree.predict(queries), tree.predict_scalar(queries)
        )

    def test_stump_parity(self):
        """A no-split tree (constant target) predicts the leaf everywhere."""
        X = np.zeros((10, 3))
        y = np.full(10, 2.5)
        tree = RegressionTree().fit(X, y)
        queries = np.random.default_rng(0).uniform(size=(20, 3))
        np.testing.assert_array_equal(
            tree.predict(queries), tree.predict_scalar(queries)
        )
        np.testing.assert_array_equal(tree.predict(queries), np.full(20, 2.5))

    def test_forest_predict_is_mean_of_scalar_tree_walks(self, data, rng):
        X, y = data
        forest = RandomForest(n_trees=12, seed=3).fit(X, y)
        queries = rng.uniform(size=(50, 5))
        reference = np.stack(
            [t.predict_scalar(queries) for t in forest._trees]
        ).mean(axis=0)
        np.testing.assert_array_equal(forest.predict(queries), reference)


# ---------------------------------------------------------------------------
# Scaler inverse transforms (including degenerate constant columns)
# ---------------------------------------------------------------------------
class TestScalerRoundTrips:
    def test_minmax_round_trip(self, rng):
        X = rng.normal(size=(40, 4)) * [1, 10, 100, 0.01]
        s = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            s.inverse_transform(s.transform(X)), X, atol=1e-12
        )

    def test_minmax_constant_column_round_trips(self):
        X = np.column_stack([np.full(10, 3.5), np.arange(10.0)])
        s = MinMaxScaler().fit(X)
        transformed = s.transform(X)
        # Constant column maps to a constant (no divide-by-zero blowup)...
        assert np.isfinite(transformed).all()
        assert np.ptp(transformed[:, 0]) == 0.0
        # ...and inverts back to the original value exactly.
        np.testing.assert_allclose(s.inverse_transform(transformed), X)

    def test_minmax_all_constant_matrix(self):
        X = np.full((6, 3), 9.0)
        s = MinMaxScaler().fit(X)
        np.testing.assert_allclose(s.inverse_transform(s.transform(X)), X)

    def test_standard_constant_column_round_trips(self):
        X = np.column_stack([np.full(12, -2.0), np.linspace(0, 1, 12)])
        s = StandardScaler().fit(X)
        transformed = s.transform(X)
        assert np.isfinite(transformed).all()
        np.testing.assert_allclose(
            s.inverse_transform(transformed), X, atol=1e-12
        )

    def test_inverse_transform_requires_fit(self):
        with pytest.raises(ModelNotFitted):
            MinMaxScaler().inverse_transform(np.zeros((2, 2)))
        with pytest.raises(ModelNotFitted):
            StandardScaler().inverse_transform(np.zeros((2, 2)))


# ---------------------------------------------------------------------------
# Model state round-trips (the registry's persistence contract)
# ---------------------------------------------------------------------------
def _round_trip(model):
    """dump → strict JSON → load; returns the reconstructed model."""
    state = dump_model(model)
    payload = json.loads(json.dumps(state, allow_nan=False))
    return load_model(payload)


class TestModelStateRoundTrips:
    def test_random_forest(self, data, rng):
        X, y = data
        model = RandomForest(n_trees=8, seed=5).fit(X, y)
        queries = rng.uniform(size=(30, 5))
        restored = _round_trip(model)
        np.testing.assert_array_equal(
            model.predict(queries), restored.predict(queries)
        )
        mu_a, sd_a = model.predict_std(queries)
        mu_b, sd_b = restored.predict_std(queries)
        np.testing.assert_array_equal(mu_a, mu_b)
        np.testing.assert_array_equal(sd_a, sd_b)

    def test_gaussian_process(self, data, rng):
        X, y = data
        model = GaussianProcess().fit(X, y)
        queries = rng.uniform(size=(25, 5))
        restored = _round_trip(model)
        mu_a, sd_a = model.predict(queries, return_std=True)
        mu_b, sd_b = restored.predict(queries, return_std=True)
        np.testing.assert_allclose(mu_a, mu_b, atol=1e-10)
        np.testing.assert_allclose(sd_a, sd_b, atol=1e-10)

    @pytest.mark.parametrize("cls", [RidgeRegression, Lasso])
    def test_linear_models(self, cls, data, rng):
        X, y = data
        model = cls().fit(X, y)
        queries = rng.uniform(size=(25, 5))
        restored = _round_trip(model)
        np.testing.assert_allclose(
            model.predict(queries), restored.predict(queries), atol=1e-12
        )

    def test_mlp(self, data, rng):
        X, y = data
        model = MLPRegressor(hidden=(16,), epochs=50, seed=2).fit(X, y)
        queries = rng.uniform(size=(25, 5))
        restored = _round_trip(model)
        np.testing.assert_allclose(
            model.predict(queries), restored.predict(queries), atol=1e-12
        )

    def test_mean_ensemble(self, data, rng):
        X, y = data
        model = MeanEnsemble(
            [GaussianProcess(), RandomForest(n_trees=6, seed=1)]
        ).fit(X, y)
        queries = rng.uniform(size=(25, 5))
        restored = _round_trip(model)
        np.testing.assert_allclose(
            model.predict(queries), restored.predict(queries), atol=1e-10
        )
        mu_a, sd_a = model.predict_std(queries)
        mu_b, sd_b = restored.predict_std(queries)
        np.testing.assert_allclose(mu_a, mu_b, atol=1e-10)
        np.testing.assert_allclose(sd_a, sd_b, atol=1e-10)

    def test_scalers(self, rng):
        X = rng.normal(size=(30, 4))
        for scaler in (MinMaxScaler().fit(X), StandardScaler().fit(X)):
            restored = _round_trip(scaler)
            np.testing.assert_array_equal(
                scaler.transform(X), restored.transform(X)
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            load_model({"kind": "mystery-model"})

    def test_unfitted_models_refuse_to_dump(self):
        with pytest.raises(ModelNotFitted):
            dump_model(RandomForest())
        with pytest.raises(ModelNotFitted):
            dump_model(RegressionTree())
