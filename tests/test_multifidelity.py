"""The fidelity axis: scaling semantics, budget charging, successive-
halving promotion, and — above all — the parity pin: fidelity 1.0 is
byte-identical to the pre-fidelity code path for every tuner."""

import math

import numpy as np
import pytest

from repro import make_tuner
from repro.bench.harness import standard_cluster
from repro.core import Budget, InstrumentedSystem, PromotionScheduler
from repro.core.fidelity import (
    DISTORTION_AMPLITUDE,
    Fidelity,
    FidelitySystem,
    scale_measurement,
    with_fidelity,
)
from repro.core.measurement import (
    Measurement,
    Observation,
    TuningHistory,
    history_digest,
)
from repro.core.serialize import observation_from_jsonable, to_jsonable
from repro.core.session import TuningSession
from repro.exceptions import ReproError
from repro.exec import EvaluationCache, ParallelRunner
from repro.exec.resilience import ExecutionPolicy
from repro.systems.dbms import DbmsSimulator, htap_mixed
from repro.tuners.common import history_to_training_data
from repro.tuners.ml.ottertune import build_repository

_BUDGET = Budget(max_runs=14)
_NOISE = 0.05
_TUNER_SEED = 7
_NOISE_SEED = 999

_REPO = None


def _repository():
    global _REPO
    if _REPO is None:
        _REPO = build_repository(
            DbmsSimulator(standard_cluster()),
            [htap_mixed(0.6)],
            n_samples=12,
            rng=np.random.default_rng(7),
        )
    return _REPO


# Mirrors tests/test_driver_parity.py: every ask/tell tuner family.
_SPECS = {
    "default": lambda: make_tuner("default"),
    "random-search": lambda: make_tuner("random-search"),
    "grid-search": lambda: make_tuner("grid-search", levels=3, n_knobs=2),
    "genetic": lambda: make_tuner("genetic", population=4, elite=1),
    "rrs": lambda: make_tuner("rrs", n_global=4),
    "adaptive-sampling": lambda: make_tuner(
        "adaptive-sampling", n_bootstrap=6, n_candidates=60
    ),
    "sard": lambda: make_tuner("sard", batch_size=2),
    "ituned": lambda: make_tuner(
        "ituned", n_init=5, batch_size=3, n_candidates=60
    ),
    "bayesopt": lambda: make_tuner("bayesopt", n_init=4, n_candidates=60),
    "cem": lambda: make_tuner("cem", batch=4),
    "nn-tuner": lambda: make_tuner(
        "nn-tuner", n_init=5, epochs=30, hidden=(8, 8), n_candidates=60
    ),
    "ensemble": lambda: make_tuner(
        "ensemble", n_init=5, mlp_epochs=30, n_candidates=60
    ),
    "ottertune": lambda: make_tuner(
        "ottertune", repository=_repository(), n_init=4, n_candidates=60
    ),
}


@pytest.fixture
def system():
    return DbmsSimulator(standard_cluster())


@pytest.fixture
def workload():
    return htap_mixed(0.3)


def _instrumented(system=None):
    return InstrumentedSystem(
        system or DbmsSimulator(standard_cluster()),
        noise=_NOISE,
        rng=np.random.default_rng(_NOISE_SEED),
    )


class TestFidelityValue:
    def test_validates_range(self):
        for bad in (0.0, -0.5, 1.5, math.nan, math.inf):
            with pytest.raises(ValueError):
                Fidelity(bad)
        assert Fidelity(1.0).full
        assert not Fidelity(0.25).full

    def test_with_fidelity_identity_at_full(self, system):
        assert with_fidelity(system, 1.0) is system
        assert with_fidelity(system, Fidelity(1.0)) is system

    def test_repin_is_absolute_not_compounding(self, system):
        half = with_fidelity(system, 0.5)
        repinned = with_fidelity(half, 0.25)
        assert isinstance(repinned, FidelitySystem)
        assert repinned.inner is system
        assert repinned.fidelity == 0.25
        assert with_fidelity(half, 1.0) is system

    def test_wrapper_refuses_full_fidelity(self, system):
        with pytest.raises(ValueError):
            FidelitySystem(system, 1.0)


class TestScaleMeasurement:
    def test_full_fidelity_returns_same_object(self, system, workload):
        m = Measurement(runtime_s=10.0)
        assert scale_measurement(
            m, 1.0, workload, system.default_configuration()
        ) is m

    def test_scaled_runtime_within_distortion_band(self, system, workload):
        config = system.default_configuration()
        m = Measurement(runtime_s=10.0, cost_units=3.0)
        for f in (0.1, 0.25, 0.5, 0.9):
            scaled = scale_measurement(m, f, workload, config)
            band = DISTORTION_AMPLITUDE * (1.0 - f)
            assert scaled.ok
            assert scaled.runtime_s == pytest.approx(10.0 * f, rel=band + 1e-9)
            assert scaled.cost_units == pytest.approx(3.0 * f)
            # Deterministic: same inputs, same distortion.
            again = scale_measurement(m, f, workload, config)
            assert again.runtime_s == scaled.runtime_s

    def test_failures_stay_failed_and_scale_elapsed(self, system, workload):
        config = system.default_configuration()
        fail = Measurement(
            runtime_s=math.inf, failed=True, cost_units=2.0,
            metrics={"elapsed_before_failure_s": 4.0},
        )
        scaled = scale_measurement(fail, 0.5, workload, config)
        assert scaled.failed
        assert scaled.metric("elapsed_before_failure_s") == pytest.approx(2.0)
        assert scaled.cost_units == pytest.approx(1.0)

    def test_vectorized_batch_matches_scalar_loop(self, workload):
        inner = _instrumented()
        view = with_fidelity(inner, 0.25)
        rng = np.random.default_rng(3)
        configs = inner.config_space.sample_configurations(6, rng)
        assert view.supports_vectorized() == inner.supports_vectorized()
        serial = [view.run(workload, c) for c in configs]
        # Fresh instrumented system: noise draws must line up run-for-run.
        batch_view = with_fidelity(_instrumented(), 0.25)
        batched = batch_view.run_batch(workload, configs)
        for a, b in zip(serial, batched):
            assert a.runtime_s == b.runtime_s
            assert a.cost_units == b.cost_units


class TestPromotionScheduler:
    def test_ladder_is_geometric_and_ends_full(self):
        sched = PromotionScheduler(rungs=3, min_fidelity=0.25, eta=2.0)
        assert sched.ladder() == pytest.approx([0.25, 0.5, 1.0])
        assert PromotionScheduler(rungs=2, min_fidelity=0.1).ladder() == \
            pytest.approx([0.1, 1.0])

    def test_survivor_counts_halve(self):
        sched = PromotionScheduler(rungs=3, min_fidelity=0.25, eta=2.0)
        assert sched.survivors(8, 0) == 4
        assert sched.survivors(8, 1) == 2
        assert sched.survivors(2, 5) == 1  # never below one

    def test_validation(self):
        with pytest.raises(ValueError):
            PromotionScheduler(rungs=1)
        with pytest.raises(ValueError):
            PromotionScheduler(min_fidelity=1.0)
        with pytest.raises(ValueError):
            PromotionScheduler(eta=1.0)
        with pytest.raises(ValueError):
            PromotionScheduler(min_batch=1)


class TestDigestAndSerialization:
    def _obs(self, system, **kwargs):
        return Observation(
            config=system.default_configuration(),
            measurement=Measurement(runtime_s=5.0),
            workload="w",
            **kwargs,
        )

    def test_explicit_full_fidelity_hashes_like_legacy(self, system):
        legacy = TuningHistory()
        legacy.record(self._obs(system))
        explicit = TuningHistory()
        explicit.record(self._obs(system, fidelity=1.0))
        assert history_digest(legacy) == history_digest(explicit)

    def test_sub_fidelity_changes_digest(self, system):
        full = TuningHistory()
        full.record(self._obs(system))
        screened = TuningHistory()
        screened.record(self._obs(system, fidelity=0.5))
        assert history_digest(full) != history_digest(screened)

    def test_serialize_round_trip_and_legacy_default(self, system):
        space = system.config_space
        obs = self._obs(system, fidelity=0.25)
        payload = to_jsonable(obs)
        assert payload["fidelity"] == 0.25
        restored = observation_from_jsonable(space, payload)
        assert restored.fidelity == 0.25

        full_payload = to_jsonable(self._obs(system))
        # Full-fidelity payloads stay byte-compatible with old KBs.
        assert "fidelity" not in full_payload
        assert observation_from_jsonable(space, full_payload).fidelity == 1.0

    def test_screens_excluded_from_selection_and_training(self, system):
        history = TuningHistory()
        fast_screen = Observation(
            config=system.default_configuration(),
            measurement=Measurement(runtime_s=1.0),
            workload="w", fidelity=0.25, tag="rung-0",
        )
        history.record(fast_screen)
        history.record(self._obs(system))
        assert [o.fidelity for o in history.successful()] == [1.0]
        traj = history.incumbent_trajectory()
        assert traj[-1][1] == pytest.approx(5.0)
        charged = history.charged_trajectory()
        assert charged[0] == (pytest.approx(0.25), math.inf)
        assert charged[-1] == (pytest.approx(1.25), pytest.approx(5.0))
        from types import SimpleNamespace

        stub = SimpleNamespace(
            history=history, failure_policy="penalize",
            space=system.config_space,
        )
        X, y = history_to_training_data(stub)
        assert len(y) == 1
        assert y[0] == pytest.approx(5.0)


class TestBudgetCharging:
    def _session(self, runs=10, **kwargs):
        return TuningSession(
            _instrumented(), htap_mixed(0.3), Budget(max_runs=runs),
            np.random.default_rng(0), **kwargs,
        )

    def test_sub_fidelity_charges_fraction(self):
        session = self._session(runs=10)
        config = session.default_config()
        session.evaluate(config, fidelity=0.25)
        assert session.real_runs == 1
        assert session.charged_runs == pytest.approx(0.25)
        assert session.remaining_runs == 9  # ceil(0.25) = 1 spent
        session.evaluate(config, fidelity=0.25)
        session.evaluate(config, fidelity=0.5)
        assert session.charged_runs == pytest.approx(1.0)
        assert session.remaining_runs == 9

    def test_ten_percent_runs_cost_ten_percent_budget(self):
        session = self._session(runs=2)
        config = session.default_config()
        for _ in range(20):
            assert session.can_run()
            session.evaluate(config, fidelity=0.1)
        assert session.charged_runs == pytest.approx(2.0)
        assert not session.can_run()

    def test_batch_truncates_by_charged_budget(self):
        session = self._session(runs=3)
        configs = [session.default_config()] * 8
        ms = session.evaluate_batch(configs, fidelity=0.5)
        # 3 remaining full runs afford six half-price screens.
        assert len(ms) == 6
        assert session.charged_runs == pytest.approx(3.0)
        assert not session.can_run()

    def test_retries_charge_at_run_fidelity(self):
        from repro.chaos import ChaosSystem
        from repro.chaos.policies import TransientFaults

        chaos = ChaosSystem(
            _instrumented(), [TransientFaults(rate=0.999)], seed=1
        )
        session = TuningSession(
            chaos, htap_mixed(0.3), Budget(max_runs=10),
            np.random.default_rng(0),
            execution=ExecutionPolicy(max_retries=2),
        )
        session.evaluate(session.default_config(), fidelity=0.5)
        # Near-certain faults: every attempt (original + retries) is a
        # half-price run, charged at its own fidelity.
        assert session.real_runs >= 1
        assert session.charged_runs == pytest.approx(0.5 * session.real_runs)
        assert all(
            o.fidelity == 0.5 for o in session.history.real_observations()
        )

    def test_quarantined_screen_charges_fraction_not_poisoning(self):
        from repro.chaos import ChaosSystem, ConfigBlackout

        inner = DbmsSimulator(standard_cluster())
        space = inner.config_space
        knobs = ("temp_buffers_mb", "wal_buffers_mb")
        chaos = ChaosSystem(
            inner, [ConfigBlackout(knobs=knobs, threshold=0.85)], seed=4
        )
        unit = np.full(space.dimension, 0.5)
        for k in knobs:
            unit[space.names().index(k)] = 0.95
        hot = space.from_array_feasible(unit, np.random.default_rng(0))
        session = TuningSession(
            chaos, htap_mixed(0.3), Budget(max_runs=20),
            np.random.default_rng(0),
            execution=ExecutionPolicy(breaker_threshold=2),
        )
        session.evaluate(hot, fidelity=0.25)
        session.evaluate(hot, fidelity=0.25)
        assert session.breaker.is_open(hot)
        before = session.charged_runs
        m = session.evaluate(hot, tag="rung-0", fidelity=0.25)
        assert m.metric("quarantined") == 1.0
        # The mid-rung trip charges the screen's fraction, not a full run.
        assert session.charged_runs == pytest.approx(before + 0.25)
        skipped = session.history.real_observations()[-1]
        assert skipped.fidelity == 0.25
        assert not skipped.full_fidelity
        # And the quarantine stub can never become the incumbent.
        assert session.history.successful() == []

    def test_resilience_summary_reports_charged_runs(self):
        session = self._session(runs=10)
        session.evaluate(session.default_config(), fidelity=0.5)
        assert session.resilience_summary()["charged_runs"] == \
            pytest.approx(0.5)


class TestCacheKeys:
    def test_fidelity_views_never_collide_in_shared_cache(self, workload):
        cache = EvaluationCache()
        sim = DbmsSimulator(standard_cluster())
        config = sim.default_configuration()
        quarter = InstrumentedSystem(
            with_fidelity(DbmsSimulator(standard_cluster()), 0.25),
            eval_cache=cache,
        )
        half = InstrumentedSystem(
            with_fidelity(DbmsSimulator(standard_cluster()), 0.5),
            eval_cache=cache,
        )
        m25 = quarter.run(workload, config)
        m50 = half.run(workload, config)
        # Before execution_context entered the cache key, the second
        # view replayed the first view's measurement.
        assert m25.runtime_s != m50.runtime_s
        assert cache.stats()["misses"] == 2
        # Same-fidelity reruns still hit.
        again = quarter.run(workload, config)
        assert again.runtime_s == m25.runtime_s
        assert cache.stats()["hits"] == 1

    def test_plain_systems_keep_legacy_keys(self, workload):
        cache = EvaluationCache()
        sim = DbmsSimulator(standard_cluster())
        config = sim.default_configuration()
        key = cache.key_for(sim, workload, config)
        assert sim.execution_context() == ()
        # No context → the key shape older persisted caches used.
        assert all(not str(part).startswith("fidelity=") for part in key)


def _mf_tuner(name="cem", **overrides):
    opts = dict(
        multi_fidelity=True, fidelity_rungs=2, fidelity_min=0.25,
        fidelity_eta=2.0, fidelity_min_batch=4,
    )
    opts.update(overrides)
    if name == "cem":
        return make_tuner("cem", batch=6, **opts)
    return make_tuner(name, **opts)


class TestMultiFidelitySearch:
    def test_screens_recorded_promotions_counted(self, workload):
        result = _mf_tuner().tune(
            _instrumented(), workload, Budget(max_runs=16),
            rng=np.random.default_rng(5),
        )
        obs = result.history.real_observations()
        screens = [o for o in obs if not o.full_fidelity]
        assert screens, "screening rungs never ran"
        assert all(o.fidelity == pytest.approx(0.25) for o in screens)
        assert all("rung-0" in o.tag for o in screens)
        summary = result.extras["multi_fidelity"]
        assert summary["ladder"] == pytest.approx([0.25, 1.0])
        assert summary["screened_asks"] >= 1
        assert summary["rung_evals"] == len(screens)
        assert summary["rung_promotions"] <= summary["rung_evals"]
        charged = result.extras["resilience"]["charged_runs"]
        assert charged <= 16.0 + 1e-9
        assert charged < result.n_real_runs  # screens are discounted
        # The incumbent is a real, full-price measurement.
        assert math.isfinite(result.best_runtime_s)
        best = min(
            o.runtime_s for o in result.history.successful()
        )
        assert result.best_runtime_s == pytest.approx(best)

    def test_serial_and_parallel_digests_identical(self, workload):
        def run(runner=None):
            system = InstrumentedSystem(
                DbmsSimulator(standard_cluster()),
                noise=_NOISE,
                rng=np.random.default_rng(_NOISE_SEED),
                runner=runner,
            )
            result = _mf_tuner().tune(
                system, workload, Budget(max_runs=16),
                rng=np.random.default_rng(_TUNER_SEED),
            )
            return result.history.digest(), result.n_real_runs

        serial, n_serial = run()
        with ParallelRunner(jobs=4, mode="thread") as runner:
            parallel, n_parallel = run(runner)
        assert serial == parallel
        assert n_serial == n_parallel

    def test_off_by_default(self, workload):
        plain = make_tuner("cem", batch=6)
        assert plain.multi_fidelity is False
        result = plain.tune(
            _instrumented(), workload, Budget(max_runs=10),
            rng=np.random.default_rng(5),
        )
        assert "multi_fidelity" not in result.extras
        assert all(
            o.full_fidelity for o in result.history.real_observations()
        )

    def test_make_tuner_fidelity_kwargs_imply_opt_in(self):
        tuner = make_tuner("genetic", fidelity_rungs=2, fidelity_min=0.1)
        assert tuner.multi_fidelity is True
        assert tuner.fidelity_rungs == 2
        assert tuner.fidelity_min == 0.1

    def test_make_tuner_rejects_non_search_tuners(self):
        with pytest.raises(ReproError):
            make_tuner("rule-based", multi_fidelity=True)

    def test_make_tuner_validates_schedule_eagerly(self):
        with pytest.raises(ValueError):
            make_tuner("cem", fidelity_min=1.5)


@pytest.mark.parametrize("name", sorted(_SPECS))
def test_full_fidelity_digest_parity(name):
    """fidelity=1.0 is byte-identical to the unwrapped system for every
    tuner — the refactor's acceptance pin."""
    def run(wrap):
        inner = _instrumented()
        system = with_fidelity(inner, 1.0) if wrap else inner
        if wrap:
            assert system is inner  # identity, not a wrapper
        result = _SPECS[name]().tune(
            system, htap_mixed(0.3), _BUDGET,
            rng=np.random.default_rng(_TUNER_SEED),
        )
        return result.history.digest(), result.n_real_runs

    plain, n_plain = run(wrap=False)
    pinned, n_pinned = run(wrap=True)
    assert plain == pinned
    assert n_plain == n_pinned
