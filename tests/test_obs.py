"""Unit tests for the observability layer (repro.obs)."""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    global_metrics,
    reset_global_metrics,
    set_global_metrics,
)
from repro.obs.trace import (
    Tracer,
    event,
    get_tracer,
    set_tracer,
    span,
    tracing,
)


def _strict(payload):
    """json round-trip that rejects Infinity/NaN literals."""
    def reject(name):
        raise ValueError(name)
    return json.loads(
        json.dumps(payload, allow_nan=False), parse_constant=reject
    )


class TestMetricsRegistry:
    def test_counter_basics(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 2.5)
        assert m.value("a") == pytest.approx(3.5)
        assert m.value("missing") == 0.0

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.set_gauge("g", 1)
        m.set_gauge("g", 7)
        assert m.snapshot()["gauges"]["g"] == 7.0

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for v in (0.001, 0.002, 0.003, 0.004, 1.0):
            m.observe("h", v)
        h = m.snapshot()["histograms"]["h"]
        assert h["count"] == 5
        assert h["min"] == pytest.approx(0.001)
        assert h["max"] == pytest.approx(1.0)
        assert h["mean"] == pytest.approx(0.202)
        assert h["p50"] <= h["p95"] <= h["p99"]
        # p50 lands in the bucket holding the 3rd of 5 samples
        # (0.003 and 0.004 share the <=0.005 decade-ladder bucket).
        assert h["p50"] == pytest.approx(0.005)

    def test_timer_observes_elapsed(self):
        m = MetricsRegistry()
        with m.timer("t"):
            pass
        assert m.snapshot()["histograms"]["t"]["count"] == 1

    def test_concurrent_increments_merge_exactly(self):
        m = MetricsRegistry()
        n, per = 8, 5000

        def work():
            for _ in range(per):
                m.inc("c")
                m.observe("h", 0.01)

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.value("c") == n * per
        assert m.snapshot()["histograms"]["h"]["count"] == n * per

    def test_snapshot_is_strict_json(self):
        m = MetricsRegistry()
        m.inc("c", 2)
        m.observe("h", 0.5)
        m.set_gauge("g", 3.0)
        m.set_gauge("bad", math.inf)  # non-finite gauges are dropped
        back = _strict(m.snapshot())
        assert back["counters"]["c"] == 2
        assert "bad" not in back["gauges"]

    def test_export_merge_state_round_trip(self):
        worker = MetricsRegistry()
        worker.inc("tasks", 3)
        worker.observe("lat", 0.2)
        worker.observe("lat", 0.4)
        parent = MetricsRegistry()
        parent.inc("tasks", 1)
        parent.merge_state(worker.export_state())
        assert parent.value("tasks") == 4
        merged = parent.snapshot()["histograms"]["lat"]
        assert merged["count"] == 2
        assert merged["sum"] == pytest.approx(0.6)

    def test_reset_zeroes_everything(self):
        m = MetricsRegistry()
        m.inc("c")
        m.observe("h", 1.0)
        m.set_gauge("g", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_global_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_global_metrics(fresh)
        try:
            global_metrics().inc("x")
            assert fresh.value("x") == 1
        finally:
            set_global_metrics(previous)
        assert global_metrics() is previous


class TestTracer:
    def test_nesting_parent_links(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                t.event("tick", k=1)
        spans = t.spans()
        assert [s.name for s in spans] == ["outer", "inner", "tick"]
        assert spans[0].parent_id is None
        assert inner.parent_id == outer.span_id
        assert spans[2].parent_id == inner.span_id
        assert all(
            s.duration_s is not None and s.duration_s >= 0 for s in spans
        )

    def test_error_status_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("broken"):
                raise RuntimeError("boom")
        record = t.spans()[0]
        assert record.status == "error"
        assert record.attrs["error"] == "RuntimeError"

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.event(f"e{i}")
        assert len(t) == 3
        assert t.dropped == 2
        assert [s.name for s in t.spans()] == ["e2", "e3", "e4"]

    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("task"):
            worker.event("step")
        payloads = worker.export_state()

        parent = Tracer()
        with parent.span("batch") as batch:
            parent.adopt(payloads)
        spans = {s.name: s for s in parent.spans()}
        assert spans["task"].parent_id == batch.span_id
        assert spans["step"].parent_id == spans["task"].span_id
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_span_counts_and_exclusion(self):
        t = Tracer()
        with t.span("evaluation"):
            pass
        with t.span("runner.task"):
            pass
        assert t.span_counts() == {"evaluation": 1, "runner.task": 1}
        assert t.span_counts(exclude_prefixes=("runner.",)) == {
            "evaluation": 1
        }

    def test_export_jsonl_strict(self, tmp_path):
        t = Tracer()
        with t.span("s", bad=math.inf, nan=math.nan, obj=object()):
            pass
        path = tmp_path / "trace.jsonl"
        n = t.export_jsonl(str(path))
        assert n == 1
        lines = path.read_text().splitlines()

        def reject(name):
            raise ValueError(name)

        record = json.loads(lines[0], parse_constant=reject)
        assert record["attrs"]["bad"] == "inf"
        assert record["attrs"]["nan"] == "nan"
        assert isinstance(record["attrs"]["obj"], str)

    def test_thread_local_stacks(self):
        t = Tracer()
        seen = {}

        def worker():
            # A fresh thread has no inherited active span.
            seen["parent"] = t.current()
            with t.span("child") as c:
                seen["child_parent"] = c.parent_id

        with t.span("main"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert seen["parent"] is None
        assert seen["child_parent"] is None


class TestModuleHelpers:
    def test_noop_when_inactive(self):
        assert get_tracer() is None
        with span("anything", k=1) as record:
            assert record is None
        event("nothing")  # must not raise

    def test_active_records(self):
        with tracing() as t:
            with span("outer") as record:
                assert record is not None
                event("mark", v=2)
        assert get_tracer() is None
        assert t.span_counts() == {"mark": 1, "outer": 1}

    def test_set_tracer_returns_previous(self):
        first = Tracer()
        assert set_tracer(first) is None
        second = Tracer()
        assert set_tracer(second) is first
        assert set_tracer(None) is second


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    set_tracer(None)
    reset_global_metrics()
