"""Integration tests: tracing through sessions, cache accounting
parity across execution modes, and strict JSON on the service wire."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Budget, make_system
from repro.core.measurement import Measurement
from repro.core.system import InstrumentedSystem
from repro.core.measurement import Observation, TuningHistory
from repro.exec.cache import EvaluationCache
from repro.exec.runner import ParallelRunner
from repro.kb.store import KnowledgeBase, dumps_strict, json_safe
from repro.obs.metrics import reset_global_metrics
from repro.obs.trace import Tracer, set_tracer, tracing
from repro.tuners import ITunedTuner
from repro.workloads import htap_mixed, olap_analytics


def _reject(name):
    raise ValueError(f"non-strict JSON literal: {name}")


def _parse_strict(data):
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    return json.loads(data, parse_constant=_reject)


def _tuned_session(jobs, tracer, chaos=False, runs=14):
    """One deterministic ituned session; jobs>1 fans batches out.

    Vectorized batching is disabled so jobs>1 exercises the *runner*
    path (process fan-out, worker span adoption) these tests pin down;
    vectorized-path parity has its own suite.
    """
    sim = make_system("dbms")
    runner = ParallelRunner(jobs=jobs, cheap_task_s=0.0) if jobs > 1 else None
    cache = EvaluationCache()
    system = InstrumentedSystem(
        sim, noise=0.05, rng=np.random.default_rng(1),
        eval_cache=cache, runner=runner, vectorize=False,
    )
    execution = None
    if chaos:
        from repro.chaos.policies import standard_policies
        from repro.chaos.system import ChaosSystem
        from repro.exec.resilience import ExecutionPolicy

        system = ChaosSystem(system, standard_policies(0.25), seed=5)
        execution = ExecutionPolicy(
            deadline_s=120.0, max_retries=1, backoff_base_s=0.1,
            breaker_threshold=3,
        )
    tuner = ITunedTuner(n_init=5, batch_size=3)
    with tracing(tracer):
        result = tuner.tune(
            system, htap_mixed(), Budget(max_runs=runs),
            rng=np.random.default_rng(9), execution=execution,
        )
    return result, cache, system


@pytest.fixture(autouse=True)
def _clean_observability():
    yield
    set_tracer(None)
    reset_global_metrics()


class TestSpanParity:
    def test_serial_and_parallel_trace_identically(self):
        serial_tracer, parallel_tracer = Tracer(), Tracer()
        serial_result, _, _ = _tuned_session(1, serial_tracer)
        parallel_result, _, _ = _tuned_session(3, parallel_tracer)

        assert serial_result.best_runtime_s == parallel_result.best_runtime_s
        exclude = ("runner.",)
        assert serial_tracer.span_counts(exclude) == (
            parallel_tracer.span_counts(exclude)
        )
        counts = serial_tracer.span_counts(exclude)
        assert counts["evaluation"] == serial_result.n_real_runs
        assert counts["batch"] >= 1

    def test_chaotic_sessions_trace_identically(self):
        serial_tracer, parallel_tracer = Tracer(), Tracer()
        _, _, serial_chaos = _tuned_session(1, serial_tracer, chaos=True)
        _, _, parallel_chaos = _tuned_session(3, parallel_tracer, chaos=True)

        assert serial_chaos.fault_digest() == parallel_chaos.fault_digest()
        exclude = ("runner.",)
        assert serial_tracer.span_counts(exclude) == (
            parallel_tracer.span_counts(exclude)
        )

    def test_parallel_trace_contains_adopted_worker_spans(self):
        tracer = Tracer()
        _tuned_session(3, tracer)
        names = tracer.span_counts()
        # Worker-side spans crossed the process boundary and were
        # re-parented under this process's spans.
        assert names.get("runner.task", 0) > 0
        by_id = {s.span_id: s for s in tracer.spans()}
        for record in tracer.spans():
            if record.name == "runner.task":
                assert record.parent_id in by_id


class TestCacheAccountingParity:
    def test_hit_miss_stats_identical_across_modes(self):
        _, serial_cache, _ = _tuned_session(1, None)
        _, parallel_cache, _ = _tuned_session(3, None)
        serial_stats = serial_cache.stats()
        parallel_stats = parallel_cache.stats()
        for field in ("entries", "hits", "misses", "evictions"):
            assert serial_stats[field] == parallel_stats[field], (
                f"{field}: {serial_stats} != {parallel_stats}"
            )

    def test_contains_and_peek_are_side_effect_free(self):
        cache = EvaluationCache(max_entries=2)
        m = Measurement.failure()
        cache.store(("a",), m)
        cache.store(("b",), m)

        assert ("a",) in cache
        assert cache.peek(("a",)) is m
        assert cache.peek(("nope",)) is None
        assert ("nope",) not in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

        # Probing "a" above must NOT have refreshed its recency: "a" is
        # still the oldest entry and gets evicted first.
        cache.store(("c",), m)
        assert ("a",) not in cache
        assert ("b",) in cache and ("c",) in cache

    def test_lookup_counts_and_refreshes_lru(self):
        cache = EvaluationCache(max_entries=2)
        m = Measurement.failure()
        cache.store(("a",), m)
        cache.store(("b",), m)

        assert cache.lookup(("a",)) is m   # hit; refreshes "a"
        assert cache.lookup(("x",)) is None  # miss
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

        cache.store(("c",), m)  # now "b" is the oldest
        assert ("a",) in cache
        assert ("b",) not in cache


class TestStrictServiceJson:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.kb.service import make_server

        kb = KnowledgeBase(str(tmp_path / "svc.kb"))
        system = make_system("dbms")
        good = TuningHistory()
        good.record(Observation(
            system.default_configuration(),
            system.run(htap_mixed(), system.default_configuration()),
            tag="default",
        ))
        kb.ingest_history(system, htap_mixed(), good)

        failed = TuningHistory()
        failed.record(Observation(
            system.default_configuration(), Measurement.failure(),
            tag="all-failed",
        ))
        kb.ingest_history(system, olap_analytics(), failed)

        srv = make_server(kb)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        yield f"http://{host}:{port}"
        srv.shutdown()
        thread.join(timeout=5)
        srv.server_close()
        kb.close()

    def test_metrics_endpoint_strict_json_under_concurrency(self, server):
        def fetch(_):
            with urllib.request.urlopen(f"{server}/metrics", timeout=10) as r:
                assert r.status == 200
                return _parse_strict(r.read())

        with ThreadPoolExecutor(max_workers=12) as pool:
            payloads = list(pool.map(fetch, range(12)))
        assert len(payloads) == 12
        for payload in payloads:
            assert payload["kb"]["n_sessions"] == 2
            assert "counters" in payload["metrics"]
        # Request accounting from earlier requests is visible.
        last = payloads[-1]["metrics"]
        assert any(
            k.startswith("kb.http.metrics.") for k in last["counters"]
        )

    def test_recommend_with_inf_best_session_is_strict(self, server):
        body = json.dumps(
            {"workload": htap_mixed().name, "k": 5}
        ).encode()
        req = urllib.request.Request(
            f"{server}/recommend", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as r:
            payload = _parse_strict(r.read())
        runtimes = {
            m["workload"]: m["best_runtime_s"] for m in payload["matches"]
        }
        # The all-failed session's inf best rides the wire as "inf".
        assert runtimes[olap_analytics().name] == "inf"

    def test_client_error_is_strict_json_400(self, server):
        req = urllib.request.Request(
            f"{server}/recommend", data=b"{}",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        payload = _parse_strict(excinfo.value.read())
        assert "error" in payload


class TestStrictEncoding:
    def test_json_safe_rewrites_nonfinite(self):
        payload = {
            "a": float("inf"),
            "b": [float("-inf"), {"c": float("nan")}],
            "d": (1.5, 2),
        }
        safe = json_safe(payload)
        assert safe["a"] == "inf"
        assert safe["b"][0] == "-inf"
        assert safe["b"][1]["c"] == "nan"
        assert safe["d"] == [1.5, 2]

    def test_dumps_strict_round_trips(self):
        data = dumps_strict({"x": float("inf"), "y": 3.0})
        back = _parse_strict(data)
        assert back == {"x": "inf", "y": 3.0}

    def test_plain_dumps_would_have_leaked(self):
        # The regression this layer fixes: stdlib default emits a
        # non-RFC-8259 literal that strict parsers reject.
        leaky = json.dumps({"x": float("inf")})
        assert "Infinity" in leaky
        with pytest.raises(ValueError):
            _parse_strict(leaky)


class TestCliTrace:
    def test_tune_trace_writes_parseable_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        rc = main([
            "tune", "--system", "dbms", "--workload", "htap",
            "--runs", "8", "--trace", str(path),
        ])
        assert rc == 0
        lines = path.read_text().splitlines()
        records = [_parse_strict(line) for line in lines]
        names = [r["name"] for r in records]
        assert "session" in names
        assert names.count("evaluation") == 8
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "session"
        out = capsys.readouterr().out
        assert "trace:" in out and str(path) in out
