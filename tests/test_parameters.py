"""Tests for repro.core.parameters."""

import math

import numpy as np
import pytest

from repro.core.parameters import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    Constraint,
    NumericParameter,
    make_constraint,
)
from repro.exceptions import ConstraintViolation, ParameterError, ValidationError


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def space():
    return ConfigurationSpace(
        [
            NumericParameter("mem", 64, 1, 1024, integer=True, log_scale=True),
            NumericParameter("frac", 0.5, 0.0, 1.0),
            CategoricalParameter("codec", "lz4", ["lz4", "zlib", "zstd"]),
            BooleanParameter("flag", False),
        ],
        name="test",
    )


class TestNumericParameter:
    def test_default_is_validated(self):
        p = NumericParameter("x", 10, 1, 100)
        assert p.default == 10

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ParameterError):
            NumericParameter("x", 1, 5, 5)
        with pytest.raises(ParameterError):
            NumericParameter("x", 1, 10, 5)

    def test_log_scale_requires_positive_low(self):
        with pytest.raises(ParameterError):
            NumericParameter("x", 1, 0, 10, log_scale=True)

    def test_validate_rejects_out_of_bounds(self):
        p = NumericParameter("x", 10, 1, 100)
        with pytest.raises(ValidationError):
            p.validate(0)
        with pytest.raises(ValidationError):
            p.validate(101)

    def test_validate_rejects_nan_and_junk(self):
        p = NumericParameter("x", 10, 1, 100)
        with pytest.raises(ValidationError):
            p.validate(float("nan"))
        with pytest.raises(ValidationError):
            p.validate("not a number")

    def test_integer_rounding(self):
        p = NumericParameter("x", 10, 1, 100, integer=True)
        assert p.validate(9.6) == 10
        assert isinstance(p.validate(9.6), int)

    def test_unit_roundtrip_linear(self):
        p = NumericParameter("x", 10, 0, 100)
        for v in [0, 25, 50, 100]:
            assert p.from_unit(p.to_unit(v)) == pytest.approx(v)

    def test_unit_roundtrip_log(self):
        p = NumericParameter("x", 8, 1, 1024, log_scale=True)
        assert p.to_unit(1) == pytest.approx(0.0)
        assert p.to_unit(1024) == pytest.approx(1.0)
        assert p.from_unit(0.5) == pytest.approx(32.0, rel=0.01)

    def test_from_unit_clamps(self):
        p = NumericParameter("x", 10, 1, 100)
        assert p.from_unit(-0.5) == 1
        assert p.from_unit(1.5) == 100

    def test_clip(self):
        p = NumericParameter("x", 10, 1, 100, integer=True)
        assert p.clip(1e9) == 100
        assert p.clip(-5) == 1

    def test_grid_spans_domain(self):
        p = NumericParameter("x", 10, 1, 100)
        g = p.grid(5)
        assert g[0] == 1 and g[-1] == 100
        assert len(g) == 5

    def test_grid_deduplicates_integers(self):
        p = NumericParameter("x", 2, 1, 3, integer=True)
        assert p.grid(10) == [1, 2, 3]

    def test_sample_in_bounds(self, rng):
        p = NumericParameter("x", 8, 1, 1024, log_scale=True, integer=True)
        for _ in range(100):
            v = p.sample(rng)
            assert 1 <= v <= 1024


class TestCategoricalParameter:
    def test_needs_two_choices(self):
        with pytest.raises(ParameterError):
            CategoricalParameter("c", "a", ["a"])

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ParameterError):
            CategoricalParameter("c", "a", ["a", "a"])

    def test_validate(self):
        p = CategoricalParameter("c", "a", ["a", "b"])
        assert p.validate("b") == "b"
        with pytest.raises(ValidationError):
            p.validate("z")

    def test_unit_roundtrip(self):
        p = CategoricalParameter("c", "a", ["a", "b", "c"])
        for choice in p.choices:
            assert p.from_unit(p.to_unit(choice)) == choice

    def test_sample_covers_choices(self, rng):
        p = CategoricalParameter("c", "a", ["a", "b", "c"])
        seen = {p.sample(rng) for _ in range(100)}
        assert seen == {"a", "b", "c"}


class TestBooleanParameter:
    def test_accepts_bool_and_int(self):
        p = BooleanParameter("b", True)
        assert p.validate(False) is False
        assert p.validate(1) is True

    def test_rejects_junk(self):
        p = BooleanParameter("b", True)
        with pytest.raises(ValidationError):
            p.validate("yes")

    def test_unit_encoding(self):
        p = BooleanParameter("b", False)
        assert p.to_unit(False) == 0.0
        assert p.to_unit(True) == 1.0


class TestConfigurationSpace:
    def test_duplicate_parameter_rejected(self, space):
        with pytest.raises(ParameterError):
            space.add(NumericParameter("mem", 1, 1, 10))

    def test_lookup(self, space):
        assert space["mem"].name == "mem"
        with pytest.raises(ParameterError):
            space["nope"]

    def test_contains_and_len(self, space):
        assert "mem" in space
        assert "nope" not in space
        assert len(space) == 4

    def test_default_configuration(self, space):
        config = space.default_configuration()
        assert config["mem"] == 64
        assert config["codec"] == "lz4"

    def test_partial_overrides(self, space):
        config = space.partial({"mem": 128})
        assert config["mem"] == 128
        assert config["frac"] == 0.5

    def test_configuration_missing_key(self, space):
        with pytest.raises(ValidationError):
            space.configuration({"mem": 64})

    def test_configuration_unknown_key(self, space):
        values = space.default_configuration().to_dict()
        values["bogus"] = 1
        with pytest.raises(ValidationError):
            space.configuration(values)

    def test_vector_roundtrip(self, space, rng):
        config = space.sample_configuration(rng)
        decoded = space.from_array(space.to_array(config))
        assert decoded == config

    def test_from_array_wrong_shape(self, space):
        with pytest.raises(ValidationError):
            space.from_array([0.5, 0.5])

    def test_sampling_is_feasible_and_seeded(self, space):
        a = space.sample_configurations(5, np.random.default_rng(1))
        b = space.sample_configurations(5, np.random.default_rng(1))
        assert a == b

    def test_constraint_enforced(self, space):
        space.add_constraint(
            Constraint("mem-cap", lambda v: v["mem"] <= 512, "mem <= 512")
        )
        with pytest.raises(ConstraintViolation):
            space.partial({"mem": 1024})
        assert space.is_feasible(space.partial({"mem": 512}).to_dict())

    def test_subspace_keeps_annotated_constraints(self):
        space = ConfigurationSpace([
            NumericParameter("a", 1, 0, 10),
            NumericParameter("b", 1, 0, 10),
            NumericParameter("c", 1, 0, 10),
        ])
        space.add_constraint(
            make_constraint("ab", ["a", "b"], lambda v: v["a"] + v["b"] <= 15)
        )
        sub = space.subspace(["a", "b"])
        assert len(sub.constraints()) == 1
        sub2 = space.subspace(["a", "c"])
        assert len(sub2.constraints()) == 0

    def test_subspace_unknown_name(self, space):
        with pytest.raises(ParameterError):
            space.subspace(["nope"])

    def test_from_array_feasible_repairs(self):
        space = ConfigurationSpace([
            NumericParameter("a", 1, 0, 10),
            NumericParameter("b", 1, 0, 10),
        ])
        space.add_constraint(
            make_constraint("sum", ["a", "b"], lambda v: v["a"] + v["b"] <= 12)
        )
        config = space.from_array_feasible([1.0, 1.0], np.random.default_rng(0))
        assert config["a"] + config["b"] <= 12


class TestConfiguration:
    def test_mapping_protocol(self, space):
        config = space.default_configuration()
        assert set(config) == {"mem", "frac", "codec", "flag"}
        assert len(config) == 4

    def test_hash_and_equality(self, space):
        a = space.default_configuration()
        b = space.default_configuration()
        assert a == b and hash(a) == hash(b)
        c = a.replace(mem=128)
        assert c != a

    def test_replace_validates(self, space):
        config = space.default_configuration()
        with pytest.raises(ValidationError):
            config.replace(mem=10 ** 9)

    def test_usable_as_dict_key(self, space):
        cache = {space.default_configuration(): 1.0}
        assert cache[space.default_configuration()] == 1.0

    def test_to_array_matches_space(self, space):
        config = space.default_configuration()
        assert np.allclose(config.to_array(), space.to_array(config))
