"""Tests for the multi-objective (Pareto) analysis utilities."""

import numpy as np
import pytest

from repro.analysis.pareto import (
    hypervolume_2d,
    is_dominated,
    knee_point,
    pareto_front,
)


class TestDomination:
    def test_strictly_better_dominates(self):
        assert is_dominated([2.0, 2.0], np.array([[1.0, 1.0]]))

    def test_tradeoff_does_not_dominate(self):
        assert not is_dominated([2.0, 1.0], np.array([[1.0, 2.0]]))

    def test_equal_does_not_dominate(self):
        assert not is_dominated([1.0, 1.0], np.array([[1.0, 1.0]]))

    def test_partial_tie_dominates(self):
        assert is_dominated([1.0, 2.0], np.array([[1.0, 1.0]]))


class TestParetoFront:
    def test_simple_front(self):
        points = [(1, 5), (2, 3), (3, 4), (4, 1), (5, 2)]
        front = pareto_front(points)
        assert [points[i] for i in front] == [(1, 5), (2, 3), (4, 1)]

    def test_single_point(self):
        assert pareto_front([(1, 1)]) == [0]

    def test_all_nondominated_diagonal(self):
        points = [(i, 10 - i) for i in range(5)]
        assert len(pareto_front(points)) == 5

    def test_duplicates_kept(self):
        points = [(1, 1), (1, 1), (2, 2)]
        front = pareto_front(points)
        assert set(front) == {0, 1}

    def test_front_sorted_by_first_objective(self):
        points = [(5, 1), (1, 5), (3, 3)]
        front = pareto_front(points)
        xs = [points[i][0] for i in front]
        assert xs == sorted(xs)


class TestHypervolume:
    def test_single_point_rectangle(self):
        assert hypervolume_2d([(1.0, 1.0)], reference=(3.0, 3.0)) == pytest.approx(4.0)

    def test_dominated_points_do_not_add(self):
        a = hypervolume_2d([(1.0, 1.0)], reference=(3.0, 3.0))
        b = hypervolume_2d([(1.0, 1.0), (2.0, 2.0)], reference=(3.0, 3.0))
        assert a == pytest.approx(b)

    def test_better_front_higher_volume(self):
        worse = hypervolume_2d([(2.0, 2.0)], reference=(4.0, 4.0))
        better = hypervolume_2d([(1.0, 1.0)], reference=(4.0, 4.0))
        assert better > worse

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d([(5.0, 5.0)], reference=(3.0, 3.0)) == 0.0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            hypervolume_2d([(1.0, 1.0, 1.0)], reference=(2.0, 2.0))


class TestKnee:
    def test_knee_of_l_shaped_front(self):
        # The corner of an L dominates the tradeoff.
        points = [(1.0, 10.0), (1.5, 1.5), (10.0, 1.0)]
        assert knee_point(points) == 1

    def test_single_point(self):
        assert knee_point([(2.0, 2.0)]) == 0

    def test_knee_is_on_front(self):
        rng = np.random.default_rng(0)
        points = rng.random((20, 2)).tolist()
        assert knee_point(points) in pareto_front(points)
