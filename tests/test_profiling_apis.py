"""Tests for the profiler APIs (Hadoop per-job, Spark per-stage) and
the workload-provenance bookkeeping they rely on."""

import math

import numpy as np
import pytest

from repro.core import Budget
from repro.core.session import TuningSession
from repro.systems.cluster import Cluster
from repro.systems.hadoop import HadoopSimulator, pagerank, terasort
from repro.systems.spark import SparkSimulator, spark_pagerank, spark_sort
from repro.tuners import ErnestTuner


@pytest.fixture(scope="module")
def cluster():
    return Cluster.uniform(8)


class TestHadoopProfile:
    def test_one_entry_per_job(self, cluster):
        sim = HadoopSimulator(cluster)
        wl = pagerank(2.0, iterations=3)
        profiles = sim.profile(wl, sim.default_configuration())
        assert [p["job"] for p in profiles] == [j.name for j in wl.jobs]
        assert all(p["failed"] == 0.0 for p in profiles)

    def test_breakdown_sums_to_run(self, cluster):
        sim = HadoopSimulator(cluster)
        wl = terasort(4.0)
        config = sim.default_configuration()
        profiles = sim.profile(wl, config)
        total = sum(p["elapsed_s"] for p in profiles) + 2.0 * len(profiles)
        assert total == pytest.approx(sim.run(wl, config).runtime_s, rel=0.02)

    def test_failure_truncates_pipeline(self, cluster):
        sim = HadoopSimulator(cluster)
        wl = pagerank(2.0, iterations=3)
        bad = sim.config_space.partial({"mapreduce_map_memory_mb": 256})
        profiles = sim.profile(wl, bad)
        assert profiles[0]["failed"] == 1.0
        assert len(profiles) == 1

    def test_phase_attribution_shifts_with_reducers(self, cluster):
        sim = HadoopSimulator(cluster)
        wl = terasort(4.0)
        few = sim.profile(wl, sim.config_space.partial({"mapreduce_job_reduces": 1}))
        many = sim.profile(wl, sim.config_space.partial({"mapreduce_job_reduces": 64}))
        assert many[0]["reduce_phase_s"] < few[0]["reduce_phase_s"]


class TestSparkProfile:
    def test_one_entry_per_stage(self, cluster):
        sim = SparkSimulator(cluster)
        wl = spark_sort(4.0)
        profiles = sim.profile(wl, sim.default_configuration())
        assert [(p["job"], p["stage"]) for p in profiles] == [
            ("sort", "read"), ("sort", "sort"),
        ]

    def test_shuffle_attribution(self, cluster):
        sim = SparkSimulator(cluster)
        wl = spark_sort(4.0)
        profiles = sim.profile(wl, sim.default_configuration())
        by_stage = {p["stage"]: p for p in profiles}
        assert by_stage["sort"]["shuffle_read_mb"] > 0
        assert by_stage["read"]["shuffle_read_mb"] == 0

    def test_task_counts_follow_partitions(self, cluster):
        sim = SparkSimulator(cluster)
        wl = spark_pagerank(2.0)
        config = sim.config_space.partial({"shuffle_partitions": 555})
        profiles = sim.profile(wl, config)
        shuffled = [p for p in profiles if p["stage"] in ("contribs", "ranks")]
        assert all(p["n_tasks"] == 555 for p in shuffled)

    def test_unschedulable_reported(self, cluster):
        sim = SparkSimulator(cluster)
        wl = spark_sort(4.0)
        config = sim.config_space.partial({
            "executor_memory_mb": 14000, "executor_cores": 8, "num_executors": 1,
        })
        # 14 GB + overhead exceeds what a 16 GB node can host alongside
        # the per-core constraint? If schedulable, profile must succeed.
        profiles = sim.profile(wl, config)
        assert profiles  # always returns entries, failed or not


class TestWorkloadProvenance:
    def test_probe_runs_do_not_leak_into_results(self, cluster):
        """Ernest's sampled-scale runs must never be reported as the
        session's best runtime (they are 10-20x smaller jobs)."""
        spark = SparkSimulator(cluster)
        wl = spark_sort(8.0)
        result = ErnestTuner().tune(
            spark, wl, Budget(max_runs=20), np.random.default_rng(1)
        )
        # The reported best runtime must match a full-scale observation.
        own = [
            o for o in result.history.successful() if o.workload == wl.name
        ]
        assert own, "no full-scale runs recorded"
        assert result.best_runtime_s >= min(o.runtime_s for o in own) * 0.999
        sampled = [
            o for o in result.history.successful() if o.workload != wl.name
        ]
        assert sampled, "Ernest should have probe runs"
        assert result.best_runtime_s > min(o.runtime_s for o in sampled)

    def test_session_records_workload_names(self, cluster):
        sim = SparkSimulator(cluster)
        wl = spark_sort(4.0)
        session = TuningSession(sim, wl, Budget(max_runs=3), np.random.default_rng(0))
        session.evaluate(sim.default_configuration())
        session.evaluate_workload(wl.scaled(0.1), sim.default_configuration())
        names = [o.workload for o in session.history.real_observations()]
        assert names[0] == wl.name
        assert names[1] != wl.name
