"""Property-based tests (hypothesis) for core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Budget
from repro.core.parameters import (
    BooleanParameter,
    CategoricalParameter,
    ConfigurationSpace,
    NumericParameter,
)
from repro.core.session import TuningSession
from repro.mlkit.doe import main_effects, plackett_burman
from repro.mlkit.sampling import latin_hypercube
from repro.systems.dbms import DbmsSimulator, olap_analytics
from repro.tuners.rule_based import SpexValidator

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def numeric_params(draw):
    low = draw(st.floats(min_value=0.5, max_value=1e3, allow_nan=False))
    high = low + draw(st.floats(min_value=1.5, max_value=1e6))
    log_scale = draw(st.booleans())
    integer = draw(st.booleans())
    default = low if not integer else int(math.ceil(low))
    return NumericParameter(
        "p", default=default, low=low, high=high,
        integer=integer, log_scale=log_scale,
    )


class TestParameterProperties:
    @given(param=numeric_params(), u=st.floats(min_value=0.0, max_value=1.0))
    @settings(**_SETTINGS)
    def test_from_unit_always_in_domain(self, param, u):
        v = param.from_unit(u)
        assert param.low <= float(v) <= param.high

    @given(param=numeric_params(), u=st.floats(min_value=0.0, max_value=1.0))
    @settings(**_SETTINGS)
    def test_unit_roundtrip_close(self, param, u):
        v = param.from_unit(u)
        u2 = param.to_unit(v)
        v2 = param.from_unit(u2)
        assert v == v2  # decode(encode(decode(u))) is a fixpoint

    @given(param=numeric_params(), raw=st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(**_SETTINGS)
    def test_clip_always_valid(self, param, raw):
        v = param.clip(raw)
        assert param.low <= float(v) <= param.high

    @given(
        u=st.floats(min_value=0.0, max_value=1.0),
        n_choices=st.integers(min_value=2, max_value=8),
    )
    @settings(**_SETTINGS)
    def test_categorical_from_unit_total(self, u, n_choices):
        p = CategoricalParameter("c", 0, list(range(n_choices)))
        assert p.from_unit(u) in p.choices


class TestSamplingProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        d=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(**_SETTINGS)
    def test_lhs_is_a_latin_square(self, n, d, seed):
        X = latin_hypercube(n, d, np.random.default_rng(seed))
        assert X.shape == (n, d)
        assert (X >= 0).all() and (X <= 1).all()
        for j in range(d):
            strata = np.floor(X[:, j] * n).clip(0, n - 1).astype(int)
            assert sorted(strata) == list(range(n))

    @given(k=st.integers(min_value=1, max_value=40))
    @settings(**_SETTINGS)
    def test_pb_design_is_balanced_orthogonal(self, k):
        design = plackett_burman(k)
        assert design.shape[1] == k
        assert set(np.unique(design)) <= {-1.0, 1.0}
        gram = design.T @ design
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() <= 1e-9

    @given(
        k=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(**_SETTINGS)
    def test_main_effects_zero_for_constant_response(self, k, seed):
        design = plackett_burman(k)
        effects = main_effects(design, np.full(design.shape[0], 5.0))
        assert np.allclose(effects, 0.0)


@pytest.fixture(scope="module")
def dbms():
    return DbmsSimulator()


@pytest.fixture(scope="module")
def olap():
    return olap_analytics(0.3)


class TestSimulatorProperties:
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(**_SETTINGS)
    def test_any_feasible_config_yields_valid_measurement(self, dbms, olap, seed):
        config = dbms.config_space.sample_configuration(np.random.default_rng(seed))
        m = dbms.run(olap, config)
        if m.ok:
            assert m.runtime_s > 0 and math.isfinite(m.runtime_s)
            assert 0 <= m.metric("buffer_hit_ratio") <= 1
        else:
            assert math.isinf(m.runtime_s)
            assert m.metric("elapsed_before_failure_s") >= 0

    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_simulator_is_deterministic(self, dbms, olap, seed):
        config = dbms.config_space.sample_configuration(np.random.default_rng(seed))
        assert dbms.run(olap, config).runtime_s == dbms.run(olap, config).runtime_s


class TestRepairProperties:
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(**_SETTINGS)
    def test_repair_always_reaches_feasibility(self, dbms, seed):
        rng = np.random.default_rng(seed)
        space = dbms.config_space
        validator = SpexValidator(space)
        # Corrupt random knobs with extreme values.
        values = {p.name: p.sample(rng) for p in space.parameters()}
        for name in ("buffer_pool_mb", "wal_buffers_mb", "temp_buffers_mb"):
            if rng.random() < 0.5:
                values[name] = space[name].high
        repaired = validator.repair_values(values)
        assert space.is_feasible(repaired)
        space.configuration(repaired)


class TestBudgetProperties:
    @given(
        max_runs=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2 ** 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_no_tuner_session_exceeds_budget(self, dbms, olap, max_runs, seed):
        from repro.tuners import RandomSearchTuner

        result = RandomSearchTuner().tune(
            dbms, olap, Budget(max_runs=max_runs), np.random.default_rng(seed)
        )
        assert result.n_real_runs <= max_runs
