"""Property-based tests for the Hadoop and Spark simulators."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.systems.cluster import Cluster, NodeSpec
from repro.systems.hadoop import HadoopSimulator, MRJobSpec, HadoopWorkload, terasort
from repro.systems.spark import SparkSimulator, spark_sort

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def hadoop():
    return HadoopSimulator(Cluster.uniform(4))


@pytest.fixture(scope="module")
def spark():
    return SparkSimulator(Cluster.uniform(4))


@pytest.fixture(scope="module")
def mr_workload():
    return terasort(2.0)


@pytest.fixture(scope="module")
def spark_workload():
    return spark_sort(2.0)


class TestHadoopProperties:
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(**_SETTINGS)
    def test_any_config_yields_valid_measurement(self, hadoop, mr_workload, seed):
        config = hadoop.config_space.sample_configuration(np.random.default_rng(seed))
        m = hadoop.run(mr_workload, config)
        if m.ok:
            assert 0 < m.runtime_s < math.inf
            assert m.metric("n_map_tasks") >= 1
            assert m.metric("n_reduce_tasks") >= 1
        else:
            assert math.isinf(m.runtime_s)

    @given(
        input_mb=st.floats(min_value=64, max_value=65536),
        selectivity=st.floats(min_value=0.001, max_value=3.0),
        skew=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(**_SETTINGS)
    def test_any_job_spec_runs_with_defaults(self, hadoop, input_mb, selectivity, skew):
        job = MRJobSpec("j", input_mb=input_mb, map_selectivity=selectivity, skew=skew)
        wl = HadoopWorkload("w", [job])
        m = hadoop.run(wl, hadoop.default_configuration())
        assert m.ok and m.runtime_s > 0

    @given(seed=st.integers(min_value=0, max_value=2 ** 12))
    @settings(max_examples=10, deadline=None)
    def test_more_data_never_faster(self, hadoop, seed):
        config = hadoop.config_space.sample_configuration(np.random.default_rng(seed))
        small = hadoop.run(terasort(1.0), config)
        big = hadoop.run(terasort(4.0), config)
        if small.ok and big.ok:
            assert big.runtime_s >= small.runtime_s * 0.99

    @given(seed=st.integers(min_value=0, max_value=2 ** 12))
    @settings(max_examples=10, deadline=None)
    def test_profile_consistent_with_run(self, hadoop, mr_workload, seed):
        config = hadoop.config_space.sample_configuration(np.random.default_rng(seed))
        m = hadoop.run(mr_workload, config)
        profiles = hadoop.profile(mr_workload, config)
        assert (m.failed) == any(p["failed"] for p in profiles)


class TestSparkProperties:
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(**_SETTINGS)
    def test_any_config_yields_valid_measurement(self, spark, spark_workload, seed):
        config = spark.config_space.sample_configuration(np.random.default_rng(seed))
        m = spark.run(spark_workload, config)
        if m.ok:
            assert 0 < m.runtime_s < math.inf
            assert 1 <= m.metric("executors") <= 64
            assert 0 <= m.metric("cache_hit_fraction") <= 1
        else:
            assert math.isinf(m.runtime_s)

    @given(seed=st.integers(min_value=0, max_value=2 ** 12))
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, spark, spark_workload, seed):
        config = spark.config_space.sample_configuration(np.random.default_rng(seed))
        assert (
            spark.run(spark_workload, config).runtime_s
            == spark.run(spark_workload, config).runtime_s
        )

    @given(
        factor=st.floats(min_value=1.1, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2 ** 12),
    )
    @settings(max_examples=10, deadline=None)
    def test_scaling_monotone_on_defaults(self, spark, factor, seed):
        wl = spark_sort(2.0)
        bigger = wl.scaled(factor)
        config = spark.default_configuration()
        a = spark.run(wl, config)
        b = spark.run(bigger, config)
        assert b.runtime_s >= a.runtime_s * 0.99

    @given(seed=st.integers(min_value=0, max_value=2 ** 12))
    @settings(max_examples=10, deadline=None)
    def test_heterogeneous_never_faster_than_homogeneous(self, spark_workload, seed):
        config_overrides = {"speculation": False}
        homo = SparkSimulator(Cluster.uniform(4))
        het = SparkSimulator(Cluster.heterogeneous(
            [(3, NodeSpec()), (1, NodeSpec().scaled(cpu=0.5))]
        ))
        rng = np.random.default_rng(seed)
        config_h = homo.config_space.sample_configuration(rng)
        try:
            config_h = config_h.replace(**config_overrides)
        except Exception:
            return
        a = homo.run(spark_workload, config_h)
        b = het.run(spark_workload, config_h)
        if a.ok and b.ok:
            assert b.runtime_s >= a.runtime_s * 0.99
