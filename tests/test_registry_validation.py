"""Registry integrity: every registered tuner declares a canonical
category, bogus categories are rejected at registration time, and every
name in the registry can actually run a short tune end to end."""

import numpy as np
import pytest

from repro import Budget, make_tuner, tuner_names
from repro.core.registry import _TUNERS, register_tuner
from repro.core.tuner import CATEGORIES, Tuner
from repro.exceptions import ReproError
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics
from repro.tuners import build_repository


def _system():
    return DbmsSimulator(Cluster.uniform(4))


def _instantiate(name: str, system):
    if name == "ottertune":
        repo = build_repository(
            system, [olap_analytics(0.3)], n_samples=12,
            rng=np.random.default_rng(7),
        )
        return make_tuner(name, repository=repo)
    if name == "nn-tuner":
        return make_tuner(name, epochs=60)
    if name == "ensemble":
        return make_tuner(name, mlp_epochs=60)
    if name in ("cost-model", "trace-sim"):
        return make_tuner(name, n_model_samples=150)
    if name == "genetic":
        return make_tuner(name, population=4, elite=1)
    return make_tuner(name)


def test_every_registered_tuner_declares_canonical_category():
    for name in tuner_names():
        cls = _TUNERS[name]
        assert getattr(cls, "category", None) in CATEGORIES, name


def test_register_rejects_bogus_category():
    class BogusTuner(Tuner):
        name = "bogus-category-tuner"
        category = "vibes-driven"

        def _tune(self, session):
            return None

    with pytest.raises(ReproError, match="vibes-driven"):
        register_tuner("bogus-category-tuner")(BogusTuner)
    assert "bogus-category-tuner" not in _TUNERS


def test_register_rejects_none_category():
    class NoCategoryTuner(Tuner):
        name = "no-category-tuner"
        category = None

        def _tune(self, session):
            return None

    with pytest.raises(ReproError, match="None"):
        register_tuner("no-category-tuner")(NoCategoryTuner)
    assert "no-category-tuner" not in _TUNERS


@pytest.mark.parametrize("tuner_name", tuner_names())
def test_every_registered_tuner_smoke_tunes(tuner_name):
    """Three real runs is enough to exercise construction, the driver
    (or legacy loop), and recommendation for every registry entry."""
    system = _system()
    tuner = _instantiate(tuner_name, system)
    result = tuner.tune(
        system, htap_mixed(0.3), Budget(max_runs=3),
        rng=np.random.default_rng(11),
    )
    assert result.n_real_runs <= 3
    system.config_space.configuration(result.best_config.to_dict())
