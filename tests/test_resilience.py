"""Resilient execution: deadlines, retries, circuit breaker, failure
policies, and the infinite-runtime accounting regression."""

import math

import numpy as np
import pytest

from repro.chaos import ChaosSystem, ConfigBlackout, Hangs, TransientFaults
from repro.core import Budget, Measurement
from repro.core.measurement import Observation, TuningHistory
from repro.core.session import TuningSession
from repro.exceptions import CircuitOpen
from repro.exec.resilience import (
    FAILURE_POLICIES,
    CircuitBreaker,
    ExecutionPolicy,
)
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed
from repro.tuners.common import history_to_training_data


@pytest.fixture(scope="module")
def workload():
    return htap_mixed(0.3)


def _inner():
    return DbmsSimulator(Cluster.uniform(4))


def _session(system, workload, runs=20, execution=None, seed=0):
    return TuningSession(
        system, workload, Budget(max_runs=runs),
        np.random.default_rng(seed), execution=execution,
    )


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(deadline_s=-1.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(failure_policy="explode")
        with pytest.raises(ValueError):
            ExecutionPolicy(on_quarantine="shrug")

    def test_backoff_grows_and_caps(self):
        policy = ExecutionPolicy(
            max_retries=5, backoff_base_s=1.0, backoff_factor=2.0,
            max_backoff_s=3.0,
        )
        assert policy.backoff_s(0) == 1.0
        assert policy.backoff_s(1) == 2.0
        assert policy.backoff_s(2) == 3.0  # capped

    def test_default_policy_is_passive(self, workload):
        session = _session(_inner(), workload)
        assert session.execution.deadline_s is None
        assert session.breaker is None
        m = session.evaluate(session.default_config())
        assert m.ok
        assert session.resilience_summary()["failed_runs"] == 0


class TestDeadline:
    def test_hang_is_killed_and_charged_deadline(self, workload):
        chaos = ChaosSystem(_inner(), [Hangs(0.999)], seed=1)
        session = _session(
            chaos, workload, execution=ExecutionPolicy(deadline_s=50.0)
        )
        m = session.evaluate(session.default_config())
        assert m.failed
        assert m.metric("deadline_exceeded") == 1.0
        assert session.deadline_kills == 1
        assert session.experiment_time_s == pytest.approx(50.0)
        assert math.isfinite(session.experiment_time_s)

    def test_fast_runs_pass_deadline(self, workload):
        session = _session(
            _inner(), workload, execution=ExecutionPolicy(deadline_s=1e6)
        )
        m = session.evaluate(session.default_config())
        assert m.ok
        assert session.deadline_kills == 0


class TestRetries:
    def test_transient_failures_retry_and_charge_budget(self, workload):
        chaos = ChaosSystem(_inner(), [TransientFaults(0.999)], seed=2)
        session = _session(
            chaos, workload,
            execution=ExecutionPolicy(max_retries=2, backoff_base_s=1.5),
        )
        m = session.evaluate(session.default_config(), tag="t")
        assert m.failed  # every attempt fails at this rate
        assert session.retries == 2
        # Each failed attempt is a charged run; backoff is charged time.
        assert session.real_runs == 3
        tags = [o.tag for o in session.history.real_observations()]
        assert tags == ["t+retry0", "t+retry1", "t"]
        expected_backoff = 1.5 + 1.5 * 2.0
        assert session.experiment_time_s == pytest.approx(
            3 * 10.0 + expected_backoff
        )

    def test_config_faults_are_not_retried(self, workload):
        system = _inner()
        space = system.config_space
        knobs = ("temp_buffers_mb", "wal_buffers_mb")
        chaos = ChaosSystem(
            system, [ConfigBlackout(knobs=knobs, threshold=0.85)], seed=3
        )
        unit = np.full(space.dimension, 0.5)
        for k in knobs:
            unit[space.names().index(k)] = 0.95
        hot = space.from_array_feasible(unit, np.random.default_rng(0))
        session = _session(
            chaos, workload, execution=ExecutionPolicy(max_retries=3)
        )
        m = session.evaluate(hot)
        assert m.failed
        assert session.retries == 0
        assert session.real_runs == 1


class TestCircuitBreaker:
    def _blackout_setup(self, workload, on_quarantine="skip"):
        system = _inner()
        space = system.config_space
        knobs = ("temp_buffers_mb", "wal_buffers_mb")
        chaos = ChaosSystem(
            system, [ConfigBlackout(knobs=knobs, threshold=0.85)], seed=4
        )
        unit = np.full(space.dimension, 0.5)
        for k in knobs:
            unit[space.names().index(k)] = 0.95
        hot = space.from_array_feasible(unit, np.random.default_rng(0))
        session = _session(
            chaos, workload,
            execution=ExecutionPolicy(
                breaker_threshold=2, on_quarantine=on_quarantine
            ),
        )
        return session, hot

    def test_opens_after_threshold_and_skips(self, workload):
        session, hot = self._blackout_setup(workload)
        session.evaluate(hot)
        session.evaluate(hot)
        assert session.breaker.is_open(hot)
        before_time = session.experiment_time_s
        m = session.evaluate(hot)
        assert m.failed
        assert m.metric("quarantined") == 1.0
        assert session.quarantine_skips == 1
        # A skip charges one run but zero wall-clock.
        assert session.experiment_time_s == pytest.approx(before_time)
        summary = session.resilience_summary()
        assert summary["circuit"]["open_regions"] == 1
        assert summary["circuit"]["trips"] == 1

    def test_raise_mode_surfaces_circuit_open(self, workload):
        session, hot = self._blackout_setup(workload, on_quarantine="raise")
        session.evaluate(hot)
        session.evaluate(hot)
        with pytest.raises(CircuitOpen):
            session.evaluate(hot)

    def test_environmental_failures_do_not_trip(self, workload):
        chaos = ChaosSystem(_inner(), [TransientFaults(0.999)], seed=5)
        session = _session(
            chaos, workload, execution=ExecutionPolicy(breaker_threshold=2)
        )
        config = session.default_config()
        for _ in range(4):
            session.evaluate(config)
        assert not session.breaker.is_open(config)
        assert session.breaker.summary()["trips"] == 0

    def test_breaker_unit_streak_resets_on_success(self):
        system = _inner()
        breaker = CircuitBreaker(threshold=3)
        config = system.default_configuration()
        fail = Measurement.failure()
        breaker.record(config, fail)
        breaker.record(config, fail)
        breaker.record(config, Measurement(runtime_s=1.0))
        breaker.record(config, fail)
        breaker.record(config, fail)
        assert not breaker.is_open(config)
        breaker.record(config, fail)
        assert breaker.is_open(config)

    def test_batch_skips_quarantined_configs(self, workload):
        session, hot = self._blackout_setup(workload)
        session.evaluate(hot)
        session.evaluate(hot)
        cold = session.default_config()
        ms = session.evaluate_batch([hot, cold, hot])
        assert ms[0].metric("quarantined") == 1.0
        assert ms[1].ok
        assert ms[2].metric("quarantined") == 1.0


class TestFailurePolicies:
    def _history_session(self, workload, policy):
        session = _session(
            _inner(), workload,
            execution=ExecutionPolicy(failure_policy=policy),
        )
        space = session.space
        rng = np.random.default_rng(1)
        ok_configs = [space.sample_configuration(rng) for _ in range(3)]
        for config, rt in zip(ok_configs, (10.0, 20.0, 30.0)):
            session.history.record(Observation(
                config, Measurement(runtime_s=rt), workload=workload.name,
            ))
        session.history.record(Observation(
            space.sample_configuration(rng), Measurement.failure(),
            workload=workload.name,
        ))
        return session

    def test_policy_names_are_closed(self):
        assert FAILURE_POLICIES == ("penalize", "discard", "impute")

    def test_penalize(self, workload):
        session = self._history_session(workload, "penalize")
        _, y = history_to_training_data(session)
        assert len(y) == 4
        assert y[-1] == pytest.approx(30.0 * 3.0)

    def test_discard(self, workload):
        session = self._history_session(workload, "discard")
        _, y = history_to_training_data(session)
        assert len(y) == 3
        assert max(y) == pytest.approx(30.0)

    def test_impute(self, workload):
        session = self._history_session(workload, "impute")
        _, y = history_to_training_data(session)
        assert len(y) == 4
        assert y[-1] == pytest.approx(20.0)  # median of successes

    def test_tuner_opt_in_flows_into_session(self, workload):
        from repro.tuners import ITunedTuner

        tuner = ITunedTuner(n_init=3, failure_policy="discard")
        result = tuner.tune(
            _inner(), workload, Budget(max_runs=5),
            rng=np.random.default_rng(0),
        )
        assert result.extras["resilience"]["failure_policy"] == "discard"

    def test_invalid_policy_rejected_by_tuners(self):
        from repro.tuners import (
            ColtOnlineTuner,
            ITunedTuner,
            SardTuner,
        )

        for cls in (ITunedTuner, SardTuner, ColtOnlineTuner):
            with pytest.raises(ValueError):
                cls(failure_policy="bogus")


class TestInfiniteRuntimeAccounting:
    """Regression: hung runs (ok, infinite runtime) must never poison
    time-budget accounting or best-config selection."""

    def test_charge_never_adds_inf(self, workload):
        chaos = ChaosSystem(_inner(), [Hangs(0.999)], seed=6)
        session = _session(chaos, workload)  # no deadline at all
        m = session.evaluate(session.default_config())
        assert m.ok and math.isinf(m.runtime_s)
        assert math.isfinite(session.experiment_time_s)
        assert session.can_run()

    def test_history_best_ignores_infinite_success(self):
        history = TuningHistory()
        space = _inner().config_space
        rng = np.random.default_rng(0)
        hung = space.sample_configuration(rng)
        fine = space.sample_configuration(rng)
        history.record(Observation(hung, Measurement(runtime_s=math.inf)))
        history.record(Observation(fine, Measurement(runtime_s=12.0)))
        assert history.best().config == fine
        assert history.best_runtime() == pytest.approx(12.0)
        X, y, _ = history.to_arrays()
        assert len(y) == 1 and math.isfinite(y[0])

    def test_all_hung_history_has_no_best(self):
        history = TuningHistory()
        space = _inner().config_space
        config = space.sample_configuration(np.random.default_rng(0))
        history.record(Observation(config, Measurement(runtime_s=math.inf)))
        assert history.best() is None
        assert math.isinf(history.best_runtime())

    def test_tuner_result_never_reports_infinite_incumbent(self, workload):
        from repro.tuners import RandomSearchTuner

        chaos = ChaosSystem(_inner(), [Hangs(0.5)], seed=7)
        result = RandomSearchTuner().tune(
            chaos, workload, Budget(max_runs=10),
            rng=np.random.default_rng(0),
        )
        finite = [
            o for o in result.history.successful()
            if math.isfinite(o.runtime_s)
        ]
        if finite:
            assert math.isfinite(result.best_runtime_s)
            assert result.best_runtime_s == pytest.approx(
                min(o.runtime_s for o in finite)
            )

    def test_time_budget_not_poisoned_by_hang(self, workload):
        chaos = ChaosSystem(_inner(), [Hangs(0.5)], seed=8)
        session = TuningSession(
            chaos, workload, Budget(max_runs=50, max_experiment_time_s=500.0),
            np.random.default_rng(0),
        )
        config = session.default_config()
        runs = 0
        while session.can_run() and runs < 50:
            session.evaluate(config)
            runs += 1
        # Hangs charge zero measured time, so the session keeps going
        # until real (finite) runtimes exhaust the cap.
        assert session.experiment_time_s <= 500.0 + 100.0
        assert math.isfinite(session.experiment_time_s)
