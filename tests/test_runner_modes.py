"""Regression tests: ParallelRunner failure semantics per mode.

The auto-mode dispatcher used to probe picklability by *executing* the
first task and treating any exception — including ordinary task
failures — as "does not pickle", silently re-running the whole batch
on a thread pool and then serially.  A failing task could therefore
execute up to three times (tripled side effects) and its exception
could surface as a confusing serial-path error.  Now picklability is
decided by ``pickle.dumps`` probes before anything is submitted, and
execution exceptions propagate unchanged from every mode, with each
task executed at most once.
"""

import os

import pytest

from repro.exceptions import FaultInjected
from repro.exec.runner import ParallelRunner
from repro.obs.metrics import MetricsRegistry, set_global_metrics

MODES = ["serial", "thread", "process", "auto"]


def _square(x):
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise ValueError(f"task {x} failed")
    return x


def _record_then_maybe_fail(item):
    """Append one line per execution, then fail for index 2."""
    path, x = item
    with open(path, "a") as fh:
        fh.write(f"{x}\n")
    if x == 2:
        raise ValueError(f"task {x} failed")
    return x


def _raise_fault(x):
    raise FaultInjected("injected hang", index=x)


@pytest.fixture(autouse=True)
def _isolated_metrics():
    previous = set_global_metrics(MetricsRegistry())
    yield
    set_global_metrics(previous)


class TestExceptionPropagation:
    @pytest.mark.parametrize("mode", MODES)
    def test_task_exception_propagates(self, mode):
        with ParallelRunner(jobs=2, mode=mode) as runner:
            with pytest.raises(ValueError, match="task 2 failed"):
                runner.map(_fail_on_two, [0, 1, 2, 3])

    @pytest.mark.parametrize("mode", MODES)
    def test_chaos_fault_propagates_from_pool(self, mode):
        """A FaultInjected raised inside a pooled task keeps its type."""
        with ParallelRunner(jobs=2, mode=mode) as runner:
            with pytest.raises(FaultInjected, match="injected hang"):
                runner.map(_raise_fault, [3, 4])

    def test_unpicklable_fn_exception_not_masked(self):
        """Auto mode falls back to threads for closures — and a failing
        closure's own exception must surface, not a pickling error."""
        captured = []

        def fail(x):
            captured.append(x)
            raise KeyError(f"closure task {x}")

        with ParallelRunner(jobs=2, mode="auto") as runner:
            with pytest.raises(KeyError, match="closure task"):
                runner.map(fail, [5, 6])
        # Fallback probing must not have re-executed completed work:
        # each submitted task ran at most once.
        assert len(captured) == len(set(captured)) <= 2

    def test_process_mode_rejects_unpicklable(self):
        with ParallelRunner(jobs=2, mode="process") as runner:
            with pytest.raises(Exception):
                runner.map(lambda x: x, [1, 2])


class TestSideEffectCounts:
    @pytest.mark.parametrize("mode", MODES)
    def test_failing_batch_runs_each_task_at_most_once(self, mode, tmp_path):
        path = str(tmp_path / f"effects-{mode}.log")
        items = [(path, i) for i in range(4)]
        with ParallelRunner(jobs=2, mode=mode) as runner:
            with pytest.raises(ValueError):
                runner.map(_record_then_maybe_fail, items)
        executed = []
        if os.path.exists(path):
            executed = [
                int(line) for line in open(path).read().splitlines()
            ]
        # The old auto-mode fallback re-ran tasks on a thread pool and
        # then serially, tripling entries here.
        assert len(executed) == len(set(executed)), (
            f"tasks re-executed in mode={mode}: {sorted(executed)}"
        )
        assert len(executed) <= len(items)

    @pytest.mark.parametrize("mode", MODES)
    def test_successful_batch_runs_each_task_exactly_once(
        self, mode, tmp_path
    ):
        path = str(tmp_path / f"ok-{mode}.log")
        items = [(path, i) for i in (0, 1, 3, 4)]
        fn = _record_then_maybe_fail  # picklable, no failing index here
        with ParallelRunner(jobs=2, mode=mode) as runner:
            result = runner.map(fn, items)
        assert result == [0, 1, 3, 4]
        executed = sorted(int(line) for line in open(path))
        assert executed == [0, 1, 3, 4]


def _slow_square(x):
    import time

    time.sleep(0.02)
    return x * x


class TestCheapTaskGuard:
    """Auto mode must not fan sub-millisecond tasks out to a pool.

    BENCH_exec E1 regression: cost-model calls (~100us) ran ~4x slower
    through a process pool than serially because fork+pickle dominates.
    Auto mode now times the first task and keeps the batch serial when
    it comes in under ``cheap_task_s``.
    """

    def test_cheap_batch_stays_serial(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            with ParallelRunner(jobs=2, mode="auto", cheap_task_s=10.0) as r:
                assert r.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        finally:
            set_global_metrics(previous)
        assert registry.value("exec.runner.cheap_fallbacks") == 1
        assert registry.value("exec.runner.tasks.serial") == 4
        assert registry.value("exec.runner.tasks.process") == 0

    def test_expensive_batch_uses_pool(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            with ParallelRunner(
                jobs=2, mode="auto", cheap_task_s=0.001
            ) as r:
                assert r.map(_slow_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            set_global_metrics(previous)
        assert registry.value("exec.runner.cheap_fallbacks") == 0
        # The probed first task runs serially; the rest fan out.
        assert registry.value("exec.runner.tasks.serial") == 1
        assert registry.value("exec.runner.tasks.process") == 2

    def test_zero_threshold_disables_probe(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            with ParallelRunner(jobs=2, mode="auto", cheap_task_s=0.0) as r:
                assert r.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            set_global_metrics(previous)
        assert registry.value("exec.runner.cheap_fallbacks") == 0
        assert registry.value("exec.runner.tasks.process") == 3

    def test_explicit_process_mode_never_second_guessed(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            with ParallelRunner(
                jobs=2, mode="process", cheap_task_s=10.0
            ) as r:
                assert r.map(_square, [1, 2]) == [1, 4]
        finally:
            set_global_metrics(previous)
        assert registry.value("exec.runner.cheap_fallbacks") == 0
        assert registry.value("exec.runner.tasks.process") == 2

    def test_env_threshold_is_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHEAP_TASK_S", "1.25")
        assert ParallelRunner(jobs=2, mode="auto").cheap_task_s == 1.25
        monkeypatch.delenv("REPRO_CHEAP_TASK_S")
        assert ParallelRunner(jobs=2, mode="auto").cheap_task_s == 0.005


class TestModeAccounting:
    def test_serial_and_pool_task_counters(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            with ParallelRunner(jobs=2, mode="thread") as runner:
                runner.map(_square, [1, 2, 3])
            with ParallelRunner(jobs=1, mode="serial") as runner:
                runner.map(_square, [1, 2])
        finally:
            set_global_metrics(previous)
        assert registry.value("exec.runner.tasks.thread") == 3
        assert registry.value("exec.runner.tasks.serial") == 2
        assert registry.value("exec.runner.maps") == 2

    def test_auto_pickle_reject_counted_once(self):
        registry = MetricsRegistry()
        previous = set_global_metrics(registry)
        try:
            with ParallelRunner(jobs=2, mode="auto") as runner:
                assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        finally:
            set_global_metrics(previous)
        assert registry.value("exec.runner.pickle_rejects") == 1
        assert registry.value("exec.runner.tasks.thread") == 3
