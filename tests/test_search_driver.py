"""Unit tests for the ask/tell SearchDriver contract."""

import math
from typing import Dict, List

import numpy as np
import pytest

from repro.core import Budget, StreamResult
from repro.core.driver import Candidate, SearchState, SearchTuner
from repro.core.measurement import MODEL, Measurement
from repro.core.parameters import ConfigurationSpace, NumericParameter
from repro.core.system import SystemUnderTune
from repro.core.tuner import OnlineTuner
from repro.core.workload import Workload
from repro.kb.warmstart import PriorObservation, TransferPrior


class ToyWorkload(Workload):
    @property
    def system_kind(self) -> str:
        return "toy"

    def signature(self) -> Dict[str, float]:
        return {"w": 1.0}


class ToySystem(SystemUnderTune):
    """Runtime is 1 + x; every run is recorded for inspection."""

    name = "toy"
    kind = "toy"

    def __init__(self, runtime_s: float = None, fail: bool = False):
        self._space = ConfigurationSpace(
            [NumericParameter("x", 5, 0, 10)], name="toy"
        )
        self._runtime_s = runtime_s
        self._fail = fail
        self.calls: List[float] = []

    @property
    def config_space(self) -> ConfigurationSpace:
        return self._space

    def run(self, workload, config) -> Measurement:
        self.calls.append(float(config["x"]))
        if self._fail:
            return Measurement.failure()
        if self._runtime_s is not None:
            return Measurement(runtime_s=self._runtime_s)
        return Measurement(runtime_s=1.0 + float(config["x"]))


class RecordingTuner(SearchTuner):
    """Asks scripted batches; records every ask and tell."""

    name = "recording"
    category = "search-based"

    def __init__(self, batches: List[List[Candidate]]):
        self._batches = batches

    def setup(self, state: SearchState) -> None:
        self.asks = 0
        self.tells: List[List] = []

    def ask(self, state: SearchState):
        if self.asks >= len(self._batches):
            return []
        batch = self._batches[self.asks]
        self.asks += 1
        return batch

    def tell(self, state: SearchState, results) -> None:
        self.tells.append(list(results))


def _config(system, x):
    return system.config_space.configuration({"x": x})


def _tune(tuner, system, max_runs=10, time_cap=None, prior=None, seed=0):
    return tuner.tune(
        system, ToyWorkload("toy-wl"),
        Budget(max_runs=max_runs, max_experiment_time_s=time_cap),
        rng=np.random.default_rng(seed), prior=prior,
    )


class TestDriverLoop:
    def test_default_evaluated_first_and_told(self):
        tuner = RecordingTuner([])
        result = _tune(tuner, ToySystem())

        assert result.n_real_runs == 1
        assert result.history.observations[0].tag == "default"
        # The default's final observation was told before any ask.
        assert len(tuner.tells) == 1
        assert tuner.tells[0][0].tag == "default"

    def test_tell_gets_one_final_per_candidate_in_order(self):
        system = ToySystem()
        batch = [
            Candidate(_config(system, x), tag=f"c{x}") for x in (9, 2, 7)
        ]
        tuner = RecordingTuner([batch])
        _tune(tuner, system)

        told = tuner.tells[1]
        assert [o.tag for o in told] == ["c9", "c2", "c7"]
        assert [o.config["x"] for o in told] == [9, 2, 7]

    def test_bare_configurations_are_promoted(self):
        system = ToySystem()
        tuner = RecordingTuner([[_config(system, 3)]])
        result = _tune(tuner, system)

        assert result.n_real_runs == 2
        assert tuner.tells[1][0].tag == ""

    def test_partial_tell_then_no_more_asks(self):
        system = ToySystem()
        batch = [Candidate(_config(system, x), tag=f"c{x}") for x in (1, 2, 3)]
        tuner = RecordingTuner([batch, batch])
        result = _tune(tuner, system, max_runs=3)

        # 1 default + 2 of the 3 proposed: the tell is partial and the
        # second scripted batch is never requested.
        assert result.n_real_runs == 3
        assert len(tuner.tells[1]) == 2
        assert tuner.asks == 1

    def test_retries_collapse_to_one_final_observation(self):
        from repro.exec.resilience import ExecutionPolicy

        system = ToySystem(fail=True)
        tuner = RecordingTuner([[Candidate(_config(system, 4), tag="c")]])
        tuner.tune(
            system, ToyWorkload("toy-wl"), Budget(max_runs=8),
            rng=np.random.default_rng(0),
            execution=ExecutionPolicy(max_retries=2, backoff_base_s=0.0),
        )

        told = tuner.tells[1]
        assert len(told) == 1
        assert told[0].tag == "c"
        assert told[0].measurement.failed

    def test_predictions_are_recorded_not_charged(self):
        system = ToySystem()
        tuner = RecordingTuner([[
            Candidate(
                _config(system, 6), tag="c",
                predicted_runtime_s=42.0, predict_tag="model",
            )
        ]])
        result = _tune(tuner, system)

        predicted = [
            o for o in result.history.observations if o.source == MODEL
        ]
        assert len(predicted) == 1
        assert predicted[0].tag == "model"
        assert predicted[0].runtime_s == 42.0
        assert result.n_real_runs == 2  # default + candidate; no charge


class TestTimeCappedBatches:
    def _batch(self, system):
        return [Candidate(_config(system, x), tag=f"c{x}") for x in (1, 2, 3)]

    def test_non_atomic_batch_splits_at_wall_clock_cap(self):
        system = ToySystem(runtime_s=10.0)
        tuner = RecordingTuner([self._batch(system)])
        result = _tune(tuner, system, max_runs=10, time_cap=15.0)

        # Default (10s) leaves 5s; the split batch stops after its
        # first member crosses the cap.
        assert result.n_real_runs == 2
        assert len(tuner.tells[1]) == 1

    def test_atomic_batch_charges_whole_batch(self):
        system = ToySystem(runtime_s=10.0)
        tuner = RecordingTuner([self._batch(system)])
        tuner.atomic_batches = True
        result = _tune(tuner, system, max_runs=10, time_cap=15.0)

        assert result.n_real_runs == 4
        assert len(tuner.tells[1]) == 3


def _toy_prior(system, xs=(0, 1, 2, 3)):
    rows = [
        PriorObservation(
            values={"x": x}, runtime_s=1.0 + x,
            source_workload="src", source_session=1,
        )
        for x in xs
    ]
    return TransferPrior(rows=rows)


class TestPriorSeeding:
    def _tuner(self, batches=None, k=2):
        tuner = RecordingTuner(batches or [])
        tuner.warm_start = True
        tuner.prior_seed_k = k
        return tuner

    def test_seeds_evaluated_tagged_and_told(self):
        system = ToySystem()
        tuner = self._tuner()
        result = _tune(tuner, system, prior=_toy_prior(system))

        tags = [o.tag for o in result.history.observations]
        assert tags == ["default", "prior-0", "prior-1"]
        # Seeds arrive as one tell after the default's.
        assert len(tuner.tells) == 2
        assert [o.tag for o in tuner.tells[1]] == ["prior-0", "prior-1"]

    def test_seeding_respects_reserve(self):
        system = ToySystem()
        tuner = self._tuner(k=5)
        result = _tune(tuner, system, max_runs=3, prior=_toy_prior(system))

        # 1 default + seeds until remaining == prior_seed_reserve (1).
        tags = [o.tag for o in result.history.observations]
        assert tags == ["default", "prior-0"]

    def test_no_prior_means_no_seeding(self):
        system = ToySystem()
        tuner = self._tuner()
        result = _tune(tuner, system)

        assert [o.tag for o in result.history.observations] == ["default"]
        assert len(tuner.tells) == 1


class _CountingOnline(OnlineTuner):
    name = "counting-online"
    category = "adaptive"

    def __init__(self):
        self.stream_lengths: List[int] = []

    def tune_stream(self, system, stream, rng=None) -> StreamResult:
        self.stream_lengths.append(len(stream))
        return StreamResult(tuner_name=self.name, steps=[])


class TestOnlineProbeSizing:
    def test_failed_probe_without_elapsed_runs_single_submission(self):
        """Regression: a failed probe with no elapsed-time metric used
        to assume 1s/run and size the stream far past the cap."""
        system = ToySystem(fail=True)
        tuner = _CountingOnline()
        tuner.tune(
            system, ToyWorkload("toy-wl"),
            Budget(max_runs=50, max_experiment_time_s=100.0),
            rng=np.random.default_rng(0),
        )

        assert tuner.stream_lengths == [1]

    def test_successful_probe_sizes_stream_from_runtime(self):
        system = ToySystem(runtime_s=10.0)
        tuner = _CountingOnline()
        tuner.tune(
            system, ToyWorkload("toy-wl"),
            Budget(max_runs=50, max_experiment_time_s=100.0),
            rng=np.random.default_rng(0),
        )

        # Probe spent 10s of the 100s cap; 90s / 10s per run = 9 reps.
        assert tuner.stream_lengths == [9]
