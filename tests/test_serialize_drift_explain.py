"""Tests for serialization, drift detection, and the explain API."""

import json
import math

import numpy as np
import pytest

from repro.core import Budget
from repro.core.measurement import Measurement, Observation, TuningHistory
from repro.core.serialize import (
    configuration_from_dict,
    dumps,
    history_from_jsonable,
    measurement_from_jsonable,
    observation_from_jsonable,
    to_jsonable,
)
from repro.core.workload import WorkloadStream
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics, oltp_orders
from repro.tuners import ColtOnlineTuner, DriftDetector, MetricDriftDetector, RandomSearchTuner


@pytest.fixture(scope="module")
def system():
    return DbmsSimulator()


@pytest.fixture(scope="module")
def result(system):
    return RandomSearchTuner().tune(
        system, olap_analytics(0.3), Budget(max_runs=6), np.random.default_rng(0)
    )


class TestSerialize:
    def test_result_roundtrip_through_json(self, system, result):
        payload = json.loads(dumps(result))
        assert payload["version"] == 1
        assert payload["tuner_name"] == "random-search"
        config = configuration_from_dict(system.config_space, payload["best_config"])
        assert config == result.best_config
        history = history_from_jsonable(system.config_space, payload["history"])
        assert len(history) == len(result.history)
        assert history.best_runtime() == pytest.approx(result.history.best_runtime())

    def test_failed_measurement_roundtrip(self, system):
        h = TuningHistory()
        h.record(Observation(system.default_configuration(), Measurement.failure()))
        payload = to_jsonable(h)
        rebuilt = history_from_jsonable(system.config_space, payload)
        assert math.isinf(rebuilt[0].runtime_s)
        assert rebuilt[0].measurement.failed

    def test_stream_result_serializes(self, system):
        stream = WorkloadStream.constant(htap_mixed(0.3), 3)
        sres = ColtOnlineTuner().tune_stream(system, stream, np.random.default_rng(0))
        payload = to_jsonable(sres)
        assert payload["kind"] == "stream_result"
        assert len(payload["steps"]) == 3
        json.dumps(payload)  # fully JSON-safe

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_history_kind_checked(self, system):
        with pytest.raises(ValueError):
            history_from_jsonable(system.config_space, {"kind": "not-history"})

    def test_extras_fall_back_to_repr(self, system, result):
        result.extras["weird"] = object()
        payload = to_jsonable(result)
        assert isinstance(payload["extras"]["weird"], str)

    def test_measurement_decoder_roundtrips_extras(self):
        m = Measurement(
            runtime_s=12.5,
            metrics={"spill_mb": 64.0, "deadline_exceeded": 1.0},
            cost_units=3.0,
        )
        rebuilt = measurement_from_jsonable(json.loads(json.dumps(to_jsonable(m))))
        assert rebuilt == m
        assert rebuilt.metric("deadline_exceeded") == 1.0

    def test_hung_run_roundtrips_infinite_runtime(self, system):
        # A hung run is "successful" with unbounded runtime — the JSON
        # layer must encode inf as a string and bring it back as inf,
        # still distinguishable from a failed run.
        h = TuningHistory()
        h.record(Observation(
            system.default_configuration(),
            Measurement(runtime_s=math.inf, metrics={"hung": 1.0}),
            tag="hang",
        ))
        payload = json.loads(json.dumps(to_jsonable(h)))
        assert payload["observations"][0]["measurement"]["runtime_s"] == "inf"
        rebuilt = history_from_jsonable(system.config_space, payload)
        assert math.isinf(rebuilt[0].runtime_s)
        assert rebuilt[0].ok  # hung, not failed
        assert rebuilt.best() is None  # never an incumbent

    def test_mixed_history_roundtrip_preserves_everything(self, system):
        space = system.config_space
        rng = np.random.default_rng(4)
        h = TuningHistory()
        h.record(Observation(
            space.sample_configuration(rng),
            Measurement(3.5, metrics={"buffer_hit": 0.9}),
            tag="default", workload="w1",
        ))
        h.record(Observation(
            space.sample_configuration(rng),
            Measurement.failure(cost_units=2.0),
            tag="crashed", workload="w1",
        ))
        h.record(Observation(
            space.sample_configuration(rng),
            Measurement(7.0), source="model", tag="predicted",
        ))
        rebuilt = history_from_jsonable(
            space, json.loads(json.dumps(to_jsonable(h)))
        )
        assert len(rebuilt) == 3
        for orig, back in zip(h, rebuilt):
            assert back.config == orig.config
            assert back.measurement == orig.measurement
            assert (back.source, back.tag, back.workload) == (
                orig.source, orig.tag, orig.workload
            )
        # failure bookkeeping survives the trip
        assert not rebuilt[1].ok
        assert rebuilt[1].measurement.cost_units == 2.0
        assert len(rebuilt.real_observations()) == 2
        assert rebuilt.best_runtime() == pytest.approx(3.5)

    def test_observation_decoder_revalidates_config(self, system):
        space = system.config_space
        obs = Observation(system.default_configuration(), Measurement(1.0))
        payload = to_jsonable(obs)
        rebuilt = observation_from_jsonable(space, payload)
        assert rebuilt.config == obs.config
        payload["config"]["buffer_pool_mb"] = "not-a-number"
        with pytest.raises(Exception):
            observation_from_jsonable(space, payload)


class TestDriftDetector:
    def test_stable_stream_never_fires(self):
        d = DriftDetector()
        assert not any(d.update(10.0 + 0.01 * i % 3) for i in range(50))

    def test_level_shift_detected(self):
        d = DriftDetector()
        for _ in range(8):
            assert not d.update(10.0)
        fired = [d.update(25.0) for _ in range(6)]
        assert any(fired)

    def test_downward_shift_detected(self):
        d = DriftDetector()
        for _ in range(8):
            d.update(100.0)
        fired = [d.update(40.0) for _ in range(6)]
        assert any(fired)

    def test_crash_counts_as_drift(self):
        d = DriftDetector()
        d.update(10.0)
        assert d.update(float("inf"))

    def test_resets_after_detection(self):
        d = DriftDetector()
        for _ in range(8):
            d.update(10.0)
        for _ in range(6):
            d.update(30.0)
        assert d.n_samples < 8  # reset happened

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0)
        with pytest.raises(ValueError):
            DriftDetector(min_samples=1)

    def test_metric_detector_names_drifting_metric(self):
        d = MetricDriftDetector(min_samples=3)
        for _ in range(8):
            assert d.update({"a": 1.0, "b": 50.0}) == []
        drifted = set()
        for _ in range(6):
            drifted.update(d.update({"a": 1.0, "b": 200.0}))
        assert drifted == {"b"}


class TestExplain:
    def test_one_row_per_query(self, system):
        wl = olap_analytics()
        plans = system.explain(wl, system.default_configuration())
        assert [p["query"] for p in plans] == [q.name for q in wl.queries]

    def test_breakdown_consistent_with_run(self, system):
        wl = olap_analytics()
        config = system.default_configuration()
        plans = system.explain(wl, config)
        total = sum(p["elapsed_s"] * q.weight for p, q in zip(plans, wl.queries))
        measured = system.run(wl, config).runtime_s
        assert total == pytest.approx(measured, rel=0.02)

    def test_transaction_mix_entry(self, system):
        wl = oltp_orders(0.5, n_transactions=50_000)
        plans = system.explain(wl, system.default_configuration())
        assert plans[-1]["query"] == "(transaction mix)"
        assert plans[-1]["tps"] > 0

    def test_explain_reflects_plan_changes(self, system):
        wl = olap_analytics()
        space = system.config_space
        cheap = system.explain(wl, space.partial({"random_page_cost": 1.0}))
        dear = system.explain(wl, space.partial({"random_page_cost": 10.0}))
        assert sum(p["index_scans"] for p in cheap) >= sum(
            p["index_scans"] for p in dear
        )
