"""Regression tests for the production serving stack (ISSUE 9).

Covers the hardened request path (500 safety net, type-validated
``k``/``mode``/bodies, Content-Length enforcement), the bounded
executor (coalescing, shedding, Retry-After), the write-behind ingest
queue (group commit, never-ack-a-lost-session, flush-on-shutdown), the
lock-guarded ``_space_for`` negative cache, and per-family surrogate
locks (one cold family must not serialize the others).
"""

import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.core import Budget
from repro.kb import KnowledgeBase, make_server
from repro.kb.service import RecommendationService, ServiceError
from repro.kb.serving import IngestWriter, Overloaded, ServingConfig
from repro.surrogate import SurrogateStore
from repro.systems.dbms import DbmsSimulator, olap_analytics, oltp_orders
from repro.tuners import RandomSearchTuner


@pytest.fixture(scope="module")
def kb():
    system = DbmsSimulator()
    store = KnowledgeBase(":memory:")
    for seed, workload in enumerate([olap_analytics(), oltp_orders()]):
        result = RandomSearchTuner().tune(
            system, workload, Budget(max_runs=8), np.random.default_rng(seed)
        )
        store.ingest_result(system, workload, result, seed=seed)
    yield store
    store.close()


@pytest.fixture(scope="module")
def session_payload():
    system = DbmsSimulator()
    result = RandomSearchTuner().tune(
        system, olap_analytics(), Budget(max_runs=4),
        np.random.default_rng(7),
    )
    with KnowledgeBase(":memory:") as scratch:
        return scratch.session_payload(
            system, olap_analytics(), result, seed=7
        )


def _serve(kb, config=None, service=None):
    server = make_server(kb, port=0, config=config, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _request(server, method, path, body=None, headers=None):
    """One HTTP round trip; returns (status, parsed body, response)."""
    host, port = server.server_address[:2]
    conn = HTTPConnection(host, port, timeout=10)
    try:
        send_headers = {"Content-Type": "application/json"}
        send_headers.update(headers or {})
        payload = None if body is None else json.dumps(body).encode()
        conn.request(method, path, body=payload, headers=send_headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data), response
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server(kb):
    srv, thread = _serve(kb)
    yield srv
    _stop(srv, thread)


# -- satellite: type-validated k / mode / bodies ------------------------------
class TestRequestValidation:
    @pytest.mark.parametrize("bad_k", ["abc", "2.5", 2.5, True, None, [3], 0,
                                       -1, 10**6, float("inf"),
                                       float("nan")])
    def test_bad_k_is_400(self, server, bad_k):
        status, body, _ = _request(
            server, "POST", "/recommend",
            {"workload": olap_analytics().name, "k": bad_k},
        )
        assert status == 400
        assert "k" in body["error"]

    def test_bad_k_in_process_raises_service_error(self, kb):
        service = RecommendationService(kb)
        for bad in ("abc", True, 2.5, [1], float("inf"), float("nan")):
            with pytest.raises(ServiceError):
                service.recommend(
                    {"workload": olap_analytics().name, "k": bad}
                )

    @pytest.mark.parametrize("bad_mode", ["zen", 5, None, ["surrogate"]])
    def test_bad_mode_is_400(self, server, bad_mode):
        status, body, _ = _request(
            server, "POST", "/recommend",
            {"workload": olap_analytics().name, "mode": bad_mode},
        )
        assert status == 400
        assert "mode" in body["error"]

    def test_valid_string_k_still_works(self, server):
        status, body, _ = _request(
            server, "POST", "/recommend",
            {"workload": olap_analytics().name, "k": "2"},
        )
        assert status == 200
        assert len(body["matches"]) <= 2

    def test_non_object_top_level_body_is_400(self, server):
        host, port = server.server_address[:2]
        for raw in (b"[1, 2]", b'"hello"', b"42", b"null"):
            conn = HTTPConnection(host, port, timeout=10)
            try:
                conn.request("POST", "/recommend", body=raw,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 400
                assert "JSON object" in body["error"]
            finally:
                conn.close()

    def test_invalid_json_is_400(self, server):
        host, port = server.server_address[:2]
        conn = HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/recommend", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_bad_fingerprint_payload_is_400_not_500(self, server):
        # from_jsonable raises KeyError/AttributeError on these; the old
        # handler crashed the thread and dropped the connection
        for fingerprint in (
            {"metrics": "zen"},
            {"metrics": {"a": "b"}},
            {"metrics": [1, 2]},
            "not-an-object",
        ):
            status, body, _ = _request(
                server, "POST", "/recommend", {"fingerprint": fingerprint}
            )
            assert status == 400
            assert "error" in body

    def test_non_string_workload_is_400(self, server):
        status, body, _ = _request(
            server, "POST", "/recommend", {"workload": 42}
        )
        assert status == 400


# -- satellite: Content-Length enforcement ------------------------------------
class TestContentLength:
    def _raw(self, server, headers, payload=b""):
        """Hand-rolled POST so hostile framing reaches the server."""
        host, port = server.server_address[:2]
        lines = ["POST /recommend HTTP/1.1", f"Host: {host}:{port}"]
        lines += headers + ["", ""]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall("\r\n".join(lines).encode() + payload)
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        body = body.split(b"\r\n")[0] if b"\r\n" in body else body
        return status, json.loads(body) if body else None

    def test_missing_content_length_is_400(self, server):
        status, body = self._raw(server, [])
        assert status == 400
        assert "Content-Length" in body["error"]

    @pytest.mark.parametrize("value", ["abc", "-5", "1e6"])
    def test_invalid_content_length_is_400(self, server, value):
        status, body = self._raw(server, [f"Content-Length: {value}"])
        assert status == 400
        assert "Content-Length" in body["error"]

    def test_oversized_declared_body_is_413(self, server):
        limit = server.config.max_body_bytes
        status, body = self._raw(
            server, [f"Content-Length: {limit + 1}"]
        )
        assert status == 413
        assert "exceeds" in body["error"]

    def test_oversized_actual_body_is_413(self, kb):
        config = ServingConfig(max_body_bytes=1024)
        server, thread = _serve(kb, config=config)
        try:
            big = {"workload": "x" * 4096}
            status, body, response = _request(
                server, "POST", "/recommend", big
            )
            assert status == 413
            assert response.getheader("Connection") == "close"
        finally:
            _stop(server, thread)

    def test_truncated_body_is_400(self, server):
        status, body = self._raw(
            server, ["Content-Length: 1000"], payload=b'{"workload":'
        )
        assert status == 400
        assert "truncated" in body["error"]

    def test_server_survives_hostile_framing(self, server):
        status, body, _ = _request(server, "GET", "/workloads")
        assert status == 200


# -- satellite: broad exception handling → strict-JSON 500 --------------------
class _ExplodingService(RecommendationService):
    def recommend(self, request):
        raise ZeroDivisionError("boom")

    def workloads(self):
        raise RuntimeError("kaboom")


class TestInternalErrorPath:
    def test_unexpected_exception_is_json_500_with_error_id(self, kb):
        server, thread = _serve(kb, service=_ExplodingService(kb))
        try:
            status, body, _ = _request(
                server, "POST", "/recommend", {"workload": "w"}
            )
            assert status == 500
            assert body["error"] == "internal server error"
            assert body["error_id"].startswith("e-")
            # the opaque id is resolvable server-side via /healthz
            status, health, _ = _request(server, "GET", "/healthz")
            assert status == 200
            recorded = {e["error_id"] for e in health["recent_errors"]}
            assert body["error_id"] in recorded
            types = {e["type"] for e in health["recent_errors"]}
            assert "ZeroDivisionError" in types
        finally:
            _stop(server, thread)

    def test_get_path_500_also_answers(self, kb):
        server, thread = _serve(kb, service=_ExplodingService(kb))
        try:
            status, body, _ = _request(server, "GET", "/workloads")
            assert status == 500
            assert "error_id" in body
        finally:
            _stop(server, thread)


# -- tentpole: executor behavior over HTTP ------------------------------------
class _SlowService(RecommendationService):
    def __init__(self, kb, delay_s, **kwargs):
        super().__init__(kb, **kwargs)
        self.delay_s = delay_s

    def recommend(self, request):
        time.sleep(self.delay_s)
        return super().recommend(request)


class TestExecutor:
    def test_identical_concurrent_recommends_coalesce(self, kb):
        server, thread = _serve(kb, service=_SlowService(kb, 0.15))
        try:
            request = {"workload": olap_analytics().name, "k": 2}

            def call(_):
                return _request(server, "POST", "/recommend", request)

            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(call, range(8)))
            assert {status for status, _, _ in outcomes} == {200}
            bodies = [body for _, body, _ in outcomes]
            assert all(body == bodies[0] for body in bodies)
            stats = server.executor.stats()
            assert stats["coalesced"] > 0
            assert stats["executed"] < 8
        finally:
            _stop(server, thread)

    def test_overload_sheds_429_with_retry_after_never_5xx(self, kb):
        config = ServingConfig(
            workers=1, queue_limit=1, max_predicted_wait_s=0.01,
            coalesce=False,
        )
        server, thread = _serve(
            kb, config=config, service=_SlowService(kb, 0.1, config=config)
        )
        try:
            def call(i):
                return _request(
                    server, "POST", "/recommend",
                    {"workload": olap_analytics().name, "k": 1 + i % 3},
                )

            with ThreadPoolExecutor(max_workers=16) as pool:
                outcomes = list(pool.map(call, range(32)))
            statuses = [status for status, _, _ in outcomes]
            assert any(status == 429 for status in statuses)
            assert all(status in (200, 429) for status in statuses)
            for status, body, response in outcomes:
                if status == 429:
                    assert int(response.getheader("Retry-After")) >= 1
                    assert body["reason"] in (
                        "queue-full", "predicted-wait", "wait-timeout"
                    )
            assert sum(server.executor.stats()["shed"].values()) > 0
        finally:
            _stop(server, thread)

    def test_healthz_reports_queue_and_ingest_health(self, server, kb):
        status, body, _ = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["executor"]["workers"] >= 1
        assert body["executor"]["queued"] <= body["executor"]["queue_limit"]
        assert body["ingest"]["closed"] is False
        assert body["kb"]["n_sessions"] == len(kb)


# -- tentpole: write-behind ingest queue --------------------------------------
class _StalledKB:
    """KB wrapper whose commits block until released — a writer that is
    'killed' mid-ingest from the client's point of view."""

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def ingest_many(self, payloads):
        self.entered.set()
        self.gate.wait()
        return self._inner.ingest_many(payloads)


class TestIngestWriter:
    def test_ack_released_only_after_commit(self, session_payload):
        with KnowledgeBase(":memory:") as kb:
            writer = IngestWriter(kb, ServingConfig())
            try:
                ack = writer.submit(dict(session_payload))
                session_id = ack.wait(10.0)
                # the ack's session is durably queryable immediately
                assert session_id in [
                    record.session_id for record in kb.sessions()
                ]
            finally:
                writer.close()

    def test_kill_mid_ingest_never_acks_a_lost_session(self, session_payload):
        with KnowledgeBase(":memory:") as kb:
            stalled = _StalledKB(kb)
            writer = IngestWriter(stalled, ServingConfig())
            try:
                ack = writer.submit(dict(session_payload))
                # the writer has claimed the payload and is stuck in the
                # commit: the client times out *unacked* — and the KB
                # holds nothing it could have been told about
                assert stalled.entered.wait(5.0)
                with pytest.raises(Overloaded) as err:
                    ack.wait(0.2)
                assert err.value.reason == "ingest-slow"
                assert len(kb) == 0
                # once the writer recovers, the payload commits; only
                # now could any ack have been released
                stalled.gate.set()
                writer.flush()
                assert len(kb) == 1
                assert ack.event.is_set()
            finally:
                stalled.gate.set()
                writer.close()

    def test_bad_payload_acks_with_error_not_commit(self, session_payload):
        with KnowledgeBase(":memory:") as kb:
            writer = IngestWriter(kb, ServingConfig())
            try:
                ack = writer.submit({"kind": "nope"})
                with pytest.raises(ValueError):
                    ack.wait(10.0)
                assert len(kb) == 0
            finally:
                writer.close()

    def test_group_commit_batches_and_flush_on_shutdown(
        self, session_payload
    ):
        with KnowledgeBase(":memory:") as kb:
            stalled = _StalledKB(kb)
            config = ServingConfig(ingest_batch_max=64)
            writer = IngestWriter(stalled, config)
            acks = [writer.submit(dict(session_payload)) for _ in range(8)]
            stalled.gate.set()
            writer.close()  # flush-on-shutdown commits the backlog
            assert len(kb) == 8
            assert all(ack.event.is_set() for ack in acks)
            assert writer.stats()["committed"] == 8
            # the stall queued everything behind one blocked batch, so
            # at least one commit carried multiple payloads
            assert writer.stats()["max_batch"] > 1

    def test_ack_timeout_cancels_queued_payload_no_duplicate(
        self, session_payload
    ):
        with KnowledgeBase(":memory:") as kb:
            stalled = _StalledKB(kb)
            writer = IngestWriter(stalled, ServingConfig())
            try:
                first = writer.submit(dict(session_payload))
                assert stalled.entered.wait(5.0)  # writer stuck mid-commit
                queued = writer.submit(dict(session_payload))
                # the queued payload's client gives up: the shed must
                # *withdraw* the payload, or an honest Retry-After retry
                # would store the session twice and skew the KB
                with pytest.raises(Overloaded) as err:
                    queued.wait(0.2)
                assert err.value.reason == "ingest-slow"
                retry = writer.submit(dict(session_payload))
                stalled.gate.set()
                writer.flush()
                # first + retry committed; the cancelled original never was
                assert len(kb) == 2
                assert first.wait(5.0) and retry.wait(5.0)
                assert not queued.event.is_set()
                assert writer.stats()["cancelled"] == 1
            finally:
                stalled.gate.set()
                writer.close()

    def test_submit_after_close_is_shed(self, session_payload):
        with KnowledgeBase(":memory:") as kb:
            writer = IngestWriter(kb, ServingConfig())
            writer.close()
            with pytest.raises(Overloaded):
                writer.submit(dict(session_payload))

    def test_http_ingest_accounting(self, kb, session_payload):
        with KnowledgeBase(":memory:") as private:
            server, thread = _serve(private)
            try:
                for _ in range(5):
                    status, body, _ = _request(
                        server, "POST", "/ingest", dict(session_payload)
                    )
                    assert status == 200
                status, bad, _ = _request(
                    server, "POST", "/ingest", {"kind": "nope"}
                )
                assert status == 400
                # sqlite binding errors are payload-caused too: 400, not
                # an opaque 500, and nothing stored
                hostile = dict(session_payload)
                hostile["seed"] = []
                status, bad, _ = _request(
                    server, "POST", "/ingest", hostile
                )
                assert status == 400
                assert "payload" in bad["error"]
                server.ingest_writer.flush()
                assert len(private) == 5
            finally:
                _stop(server, thread)


# -- review fix: per-payload sqlite error isolation + rollback ----------------
class TestIngestManyIsolation:
    def test_sqlite_binding_error_never_poisons_batchmates(
        self, session_payload
    ):
        # "seed": [] passes the service's kind-only validation but dies
        # at sqlite parameter binding — it must get its own outcome
        bad = dict(session_payload)
        bad["seed"] = []
        with KnowledgeBase(":memory:") as kb:
            outcomes = kb.ingest_many(
                [dict(session_payload), bad, dict(session_payload)]
            )
            assert isinstance(outcomes[0], int)
            assert isinstance(outcomes[1], Exception)
            assert isinstance(outcomes[2], int)
            assert len(kb) == 2

    def test_failed_batch_leaves_no_pending_rows_for_next_commit(
        self, session_payload
    ):
        # review repro: a payload raising mid-batch used to skip the
        # commit with no rollback, leaving its batchmates *pending* —
        # the NEXT batch's commit then durably stored sessions whose
        # clients were never acked (duplicates on their retries)
        bad = dict(session_payload)
        bad["seed"] = []
        with KnowledgeBase(":memory:") as kb:
            outcomes = kb.ingest_many(
                [dict(session_payload), bad, dict(session_payload)]
            )
            kb.ingest_many([dict(session_payload)])
            acked = sum(1 for o in outcomes if isinstance(o, int)) + 1
            assert len(kb) == acked == 3

    def test_ingest_payload_rolls_back_on_failure(self, session_payload):
        bad = dict(session_payload)
        bad["seed"] = []
        with KnowledgeBase(":memory:") as kb:
            with pytest.raises(Exception):
                kb.ingest_payload(bad)
            assert kb.ingest_payload(dict(session_payload)) >= 1
            assert len(kb) == 1


# -- satellite: _space_for negative cache + per-family surrogate locks --------
class TestSpaceCache:
    def test_unknown_kind_negative_cache_expires(self, kb, monkeypatch):
        config = ServingConfig(space_negative_ttl_s=0.15)
        service = RecommendationService(kb, config=config)
        calls = {"n": 0}
        import repro.core.registry as registry

        real_make_system = registry.make_system

        def flaky(kind):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient registry failure")
            return real_make_system(kind)

        monkeypatch.setattr(registry, "make_system", flaky)
        assert service._space_for("dbms") is None  # failure cached...
        assert service._space_for("dbms") is None  # ...within the TTL
        assert calls["n"] == 1
        time.sleep(0.2)
        assert service._space_for("dbms") is not None  # retried after TTL
        # success is cached permanently
        assert service._space_for("dbms") is not None
        assert calls["n"] == 2

    def test_space_for_is_thread_safe(self, kb):
        service = RecommendationService(kb)
        with ThreadPoolExecutor(max_workers=8) as pool:
            spaces = list(pool.map(
                lambda _: service._space_for("dbms"), range(32)
            ))
        assert all(space is spaces[0] for space in spaces)
        assert spaces[0] is not None


class _SlowTrainStore(SurrogateStore):
    """Registry whose (cold) lookups take a fixed, measurable time."""

    def __init__(self, delay_s):
        super().__init__()
        self.delay_s = delay_s

    def get(self, *args, **kwargs):
        time.sleep(self.delay_s)
        return None  # always cold: recommend falls back to similarity


class TestSurrogateConcurrency:
    def test_cold_families_train_concurrently(self, kb):
        """Two different cold families must not serialize on one lock.

        Pre-fix, a global ``_surrogate_lock`` made every surrogate
        request queue behind whichever family happened to be training.
        """
        delay = 0.3
        service = RecommendationService(
            kb, surrogate_store=_SlowTrainStore(delay)
        )
        requests = [
            {"workload": olap_analytics().name, "mode": "surrogate"},
            {"workload": oltp_orders().name, "mode": "surrogate"},
        ]
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(service.recommend, requests))
        elapsed = time.perf_counter() - start
        assert all(r["served_by"] == "similarity-fallback" for r in results)
        # serialized would be >= 2 * delay; concurrent is ~1 * delay
        assert elapsed < 1.8 * delay, (
            f"two cold families took {elapsed:.2f}s — still serialized"
        )

    def test_same_family_still_single_flight(self, kb):
        """Identical families *do* share the lock — exactly one train."""
        store = _SlowTrainStore(0.1)
        calls = []
        original = store.get

        def counting_get(*args, **kwargs):
            calls.append(time.perf_counter())
            return original(*args, **kwargs)

        store.get = counting_get
        service = RecommendationService(kb, surrogate_store=store)
        request = {"workload": olap_analytics().name, "mode": "surrogate"}
        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(service.recommend, [request, dict(request)]))
        # both requests looked up, but never overlapped (second starts
        # after the first's 0.1 s hold)
        assert len(calls) == 2
        assert calls[1] - calls[0] >= 0.09


class TestRetrainDebounce:
    def test_debounce_serves_stale_model_within_window(self, kb):
        config = ServingConfig(surrogate_retrain_debounce_s=60.0)
        store = SurrogateStore()
        service = RecommendationService(kb, surrogate_store=store,
                                        config=config)
        request = {"workload": olap_analytics().name, "mode": "surrogate"}
        service.recommend(request)
        trains_after_first = store.trains
        # an ingest bumps the KB version: without the debounce every
        # subsequent surrogate request would retrain
        system = DbmsSimulator()
        result = RandomSearchTuner().tune(
            system, oltp_orders(), Budget(max_runs=4),
            np.random.default_rng(11),
        )
        kb.ingest_result(system, oltp_orders(), result, seed=11)
        service.recommend(dict(request))
        assert store.trains == trains_after_first
