"""Behavioural tests for the Spark simulator."""

import math

import pytest

from repro.exceptions import WorkloadError
from repro.systems.cluster import Cluster, NodeSpec
from repro.systems.spark import (
    GROUND_TRUTH_IMPACT,
    SPARK_TUNING_KNOBS,
    SparkJob,
    SparkSimulator,
    SparkStage,
    SparkWorkload,
    adhoc_app,
    spark_kmeans,
    spark_pagerank,
    spark_sort,
    spark_sql_join,
    spark_streaming_batches,
)


@pytest.fixture(scope="module")
def sim():
    return SparkSimulator()


@pytest.fixture(scope="module")
def space(sim):
    return sim.config_space


@pytest.fixture(scope="module")
def sort_wl():
    return spark_sort(8.0)


def runtime(sim, wl, **overrides):
    return sim.run(wl, sim.config_space.partial(overrides)).runtime_s


class TestDagModel:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            SparkStage("s", source_mb=0)  # source stage needs input
        with pytest.raises(ValueError):
            SparkStage("s", source_mb=10, output_ratio=-1)

    def test_job_rejects_forward_references(self):
        with pytest.raises(WorkloadError):
            SparkJob("j", [SparkStage("a", parents=("b",))])

    def test_job_rejects_duplicate_stages(self):
        with pytest.raises(WorkloadError):
            SparkJob("j", [
                SparkStage("a", source_mb=10),
                SparkStage("a", source_mb=10),
            ])

    def test_stage_inputs_propagate(self):
        job = SparkJob("j", [
            SparkStage("read", source_mb=100, output_ratio=0.5),
            SparkStage("agg", parents=("read",), output_ratio=0.1, shuffled=True),
        ])
        inputs = job.stage_inputs_mb()
        assert inputs["read"] == 100
        assert inputs["agg"] == 50

    def test_cached_mb(self):
        job = SparkJob("j", [
            SparkStage("read", source_mb=100, output_ratio=0.5, cached=True),
        ])
        assert job.cached_mb() == pytest.approx(50.0)

    def test_adhoc_seeded(self):
        assert adhoc_app(4).signature() == adhoc_app(4).signature()


class TestEngineBehaviour:
    def test_deterministic(self, sim, sort_wl, space):
        config = space.default_configuration()
        assert sim.run(sort_wl, config).runtime_s == sim.run(sort_wl, config).runtime_s

    def test_shuffle_partitions_u_shape(self, sim, sort_wl):
        mid = runtime(sim, sort_wl, shuffle_partitions=200)
        many = runtime(sim, sort_wl, shuffle_partitions=2000)
        few = runtime(sim, sort_wl, shuffle_partitions=20)
        assert mid < many
        assert mid < few or math.isinf(few)

    def test_too_few_partitions_can_oom(self, sim, sort_wl, space):
        m = sim.run(sort_wl, space.partial({"shuffle_partitions": 8}))
        assert m.failed

    def test_more_executors_scale_out(self, sim, sort_wl):
        r2 = runtime(sim, sort_wl, num_executors=2)
        r16 = runtime(sim, sort_wl, num_executors=16)
        assert r16 < r2

    def test_executor_capacity_capped_by_cluster(self, sim, sort_wl, space):
        m = sim.run(sort_wl, space.partial({
            "num_executors": 64, "executor_cores": 8, "executor_memory_mb": 8192,
        }))
        # 8 nodes x 16GB: at most 1 such executor per node.
        assert m.metrics["executors"] <= 8

    def test_kryo_beats_java_on_shuffle_heavy(self, sim, sort_wl):
        java = runtime(sim, sort_wl, serializer="java")
        kryo = runtime(sim, sort_wl, serializer="kryo")
        assert kryo < java

    def test_caching_speeds_up_iterative(self, sim, space):
        wl = spark_pagerank(3.0, iterations=8)
        tiny_cache = sim.run(wl, space.partial({
            "num_executors": 8, "executor_memory_mb": 1024,
        }))
        big_cache = sim.run(wl, space.partial({
            "num_executors": 8, "executor_memory_mb": 8192,
        }))
        assert big_cache.metric("cache_hit_fraction") > tiny_cache.metric("cache_hit_fraction")
        assert big_cache.runtime_s < tiny_cache.runtime_s

    def test_broadcast_threshold_cliff(self, sim, space):
        wl = spark_sql_join(4.0, dim_mb=64)
        below = sim.run(wl, space.partial({"broadcast_threshold_mb": 32}))
        above = sim.run(wl, space.partial({"broadcast_threshold_mb": 128}))
        assert above.runtime_s < below.runtime_s
        assert above.metric("broadcast_mb") > 0
        assert below.metric("broadcast_mb") == 0

    def test_gc_pressure_metric(self, sim, space):
        wl = spark_kmeans(4.0, iterations=4)
        squeezed = sim.run(wl, space.partial({
            "executor_memory_mb": 640, "executor_cores": 4,
            "shuffle_partitions": 64, "num_executors": 8,
        }))
        roomy = sim.run(wl, space.partial({
            "executor_memory_mb": 8192, "executor_cores": 4,
            "shuffle_partitions": 64, "num_executors": 8,
        }))
        if squeezed.ok:
            assert squeezed.metric("heap_pressure") > roomy.metric("heap_pressure")

    def test_streaming_is_overhead_bound(self, sim, space):
        wl = spark_streaming_batches(batch_mb=64, n_batches=20)
        few_parts = sim.run(wl, space.partial({"shuffle_partitions": 16})).runtime_s
        many_parts = sim.run(wl, space.partial({"shuffle_partitions": 2000})).runtime_s
        assert few_parts < many_parts

    def test_locality_wait_costs_on_small_allocations(self, sim, sort_wl, space):
        impatient = sim.run(sort_wl, space.partial({
            "num_executors": 2, "locality_wait_s": 0.0})).runtime_s
        patient = sim.run(sort_wl, space.partial({
            "num_executors": 2, "locality_wait_s": 10.0})).runtime_s
        assert patient > impatient

    def test_inert_knobs_are_inert(self, sim, sort_wl, space):
        base = sim.run(sort_wl, space.default_configuration()).runtime_s
        for knob in ("network_timeout_s", "ui_retained_stages", "rpc_io_threads"):
            for value in space[knob].grid(3):
                r = sim.run(sort_wl, space.partial({knob: value})).runtime_s
                assert r == pytest.approx(base, rel=0.01), knob

    def test_metrics_complete(self, sim, sort_wl, space):
        m = sim.run(sort_wl, space.default_configuration())
        for name in sim.metric_names:
            assert name in m.metrics

    def test_ground_truth_covers_catalog(self, space):
        assert set(GROUND_TRUTH_IMPACT) == set(space.names())
        assert set(SPARK_TUNING_KNOBS) <= set(space.names())

    def test_straggler_hurts_on_het_cluster(self, sort_wl):
        homo = SparkSimulator(Cluster.uniform(8))
        het = SparkSimulator(Cluster.heterogeneous(
            [(6, NodeSpec()), (2, NodeSpec().scaled(cpu=0.4))]
        ))
        config = {"speculation": False, "num_executors": 8}
        r_homo = homo.run(sort_wl, homo.config_space.partial(config)).runtime_s
        r_het = het.run(sort_wl, het.config_space.partial(config)).runtime_s
        assert r_het > r_homo
