"""Tests for the streaming substrate (§2.5 real-time challenge)."""

import math

import pytest

from repro.systems.cluster import Cluster
from repro.systems.spark import SparkSimulator
from repro.systems.spark.streaming import (
    StreamingApp,
    analyze_streaming,
    make_streaming_app,
)


@pytest.fixture(scope="module")
def sim():
    return SparkSimulator(Cluster.uniform(8))


@pytest.fixture(scope="module")
def good_config(sim):
    return sim.config_space.partial({
        "num_executors": 32, "executor_cores": 4, "serializer": "kryo",
        "shuffle_partitions": 64,
    })


class TestStreamingApp:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingApp("s", arrival_mb_s=0, batch_interval_s=5)
        with pytest.raises(ValueError):
            StreamingApp("s", arrival_mb_s=10, batch_interval_s=0)

    def test_batch_size(self):
        app = make_streaming_app(20.0, batch_interval_s=5.0)
        assert app.batch_mb == pytest.approx(100.0)

    def test_one_batch_workload_runs(self, sim):
        app = make_streaming_app(20.0)
        m = sim.run(app.one_batch_workload(), sim.default_configuration())
        assert m.ok


class TestAnalyzeStreaming:
    def test_stable_under_good_config(self, sim, good_config):
        app = make_streaming_app(50.0)
        verdict = analyze_streaming(sim, app, good_config)
        assert verdict.stable
        assert 0 < verdict.utilization < 1
        assert verdict.latency_s > 0.5 * app.batch_interval_s
        assert verdict.headroom == pytest.approx(1 - verdict.utilization)

    def test_unstable_when_overloaded(self, sim):
        app = make_streaming_app(500.0)
        verdict = analyze_streaming(sim, app, sim.default_configuration())
        assert not verdict.stable
        assert math.isinf(verdict.latency_s)

    def test_latency_grows_with_utilization(self, sim, good_config):
        low = analyze_streaming(sim, make_streaming_app(20.0), good_config)
        high = analyze_streaming(sim, make_streaming_app(200.0), good_config)
        if low.stable and high.stable:
            assert high.latency_s > low.latency_s
            assert high.utilization > low.utilization

    def test_crashed_batch_is_unstable(self, sim):
        app = make_streaming_app(50.0)
        config = sim.config_space.partial({"shuffle_partitions": 8})
        verdict = analyze_streaming(sim, app, config)
        # Either OOM (unstable) or it survives; never a bogus verdict.
        if not verdict.stable:
            assert math.isinf(verdict.latency_s)

    def test_longer_interval_trades_latency_for_stability(self, sim, good_config):
        fast = analyze_streaming(
            sim, make_streaming_app(100.0, batch_interval_s=2.0), good_config
        )
        slow = analyze_streaming(
            sim, make_streaming_app(100.0, batch_interval_s=20.0), good_config
        )
        assert slow.utilization < fast.utilization
        if fast.stable and slow.stable:
            assert slow.latency_s > fast.latency_s
