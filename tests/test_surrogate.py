"""Surrogate subsystem: dataset extraction, training, registry
invalidation, zero-probe recommendation, service wiring, fleet priors."""

import json
import math
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.measurement import Observation, TuningHistory
from repro.exceptions import SurrogateError
from repro.kb import KnowledgeBase, RecommendationService, make_server
from repro.kb.service import ServiceError
from repro.kb.warmstart import PriorObservation
from repro.surrogate import (
    SurrogateStore,
    TrainedSurrogate,
    build_matrices,
    family_of,
    rank_configs,
    recommend_config,
    surrogate_prior,
    train_surrogate,
)
from repro.systems.dbms import DbmsSimulator, olap_analytics
from repro.systems.hadoop import HadoopSimulator, wordcount


def _explore(system, workload, n_rows, seed, tag="lhs"):
    """Default probe + random sweep, mirroring offline KB population."""
    from repro.mlkit import latin_hypercube

    space = system.config_space
    rng = np.random.default_rng(seed)
    history = TuningHistory()
    default = space.default_configuration()
    history.record(Observation(
        config=default, measurement=system.run(workload, default),
        tag="default", workload=workload.name,
    ))
    for i, row in enumerate(latin_hypercube(n_rows, space.dimension, rng)):
        try:
            config = space.from_array(row)
        except Exception:
            continue
        history.record(Observation(
            config=config, measurement=system.run(workload, config),
            tag=f"{tag}-{i}", workload=workload.name,
        ))
    return history


def _populate(kb, system, workloads, n_rows=16, seed=0):
    for offset, workload in enumerate(workloads):
        history = _explore(system, workload, n_rows, seed + offset)
        kb.ingest_history(system, workload, history, seed=seed + offset)


@pytest.fixture(scope="module")
def hadoop_kb():
    system = HadoopSimulator()
    kb = KnowledgeBase(":memory:")
    _populate(kb, system, [wordcount(input_gb=6), wordcount(input_gb=12)])
    yield kb, system
    kb.close()


@pytest.fixture(scope="module")
def trained(hadoop_kb):
    kb, system = hadoop_kb
    matrix = build_matrices(kb, "hadoop", system.config_space)["wordcount"]
    return train_surrogate(matrix, kb.version())


@pytest.fixture(scope="module")
def target_fingerprint(hadoop_kb):
    kb, _ = hadoop_kb
    return next(
        record.fingerprint
        for record in kb.sessions(system_kind="hadoop")
        if record.fingerprint is not None
    )


# ---------------------------------------------------------------------------
# Family grouping and matrix extraction
# ---------------------------------------------------------------------------
class TestDataset:
    @pytest.mark.parametrize("name,family", [
        ("wordcount-6g", "wordcount"),
        ("wordcount-12g", "wordcount"),
        ("terasort-1.5g", "terasort"),
        ("olap-analytics@1x", "olap-analytics"),
        ("htap-mixed@0.5x", "htap-mixed"),
        ("spark-kmeans-3g-x10", "spark-kmeans"),  # compound suffix
        ("plain-name", "plain-name"),
    ])
    def test_family_of_strips_scale_suffixes(self, name, family):
        assert family_of(name) == family

    def test_scale_variants_pool_into_one_family(self, hadoop_kb):
        kb, system = hadoop_kb
        matrices = build_matrices(kb, "hadoop", system.config_space)
        assert set(matrices) == {"wordcount"}
        matrix = matrices["wordcount"]
        assert set(matrix.workloads) == {"wordcount-6g", "wordcount-12g"}
        assert matrix.n_sessions == 2
        assert set(matrix.anchors) == {"wordcount-6g", "wordcount-12g"}

    def test_targets_are_log_ratios_and_failures_masked(self, hadoop_kb):
        kb, system = hadoop_kb
        matrix = build_matrices(kb, "hadoop", system.config_space)["wordcount"]
        assert np.isfinite(matrix.y[~matrix.failed]).all()
        assert np.isnan(matrix.y[matrix.failed]).all()
        # The default-config probe row is the anchor: ratio 1, log 0.
        assert np.isclose(matrix.y[~matrix.failed], 0.0).any()

    def test_prior_tagged_rows_are_excluded(self):
        system = DbmsSimulator()
        workload = olap_analytics()
        space = system.config_space
        with KnowledgeBase(":memory:") as kb:
            history = _explore(system, workload, 6, seed=3)
            poisoned = space.default_configuration()
            history.record(Observation(
                config=poisoned, measurement=system.run(workload, poisoned),
                tag="prior-transfer", workload=workload.name,
            ))
            kb.ingest_history(system, workload, history)
            matrix = build_matrices(kb, "dbms", space)["olap-analytics"]
            real_rows = sum(
                1 for obs in history
                if not obs.tag.startswith("prior")
            )
            assert matrix.n_rows == real_rows

    def test_empty_kb_has_no_matrices(self):
        system = DbmsSimulator()
        with KnowledgeBase(":memory:") as kb:
            assert build_matrices(kb, "dbms", system.config_space) == {}


# ---------------------------------------------------------------------------
# Trainer
# ---------------------------------------------------------------------------
class TestTrainer:
    def test_trained_surrogate_shape(self, trained, hadoop_kb):
        kb, system = hadoop_kb
        assert trained.family == "wordcount"
        assert trained.kb_version == tuple(kb.version())
        assert trained.knob_names == tuple(system.config_space.names())
        assert 0 < len(trained.top_knobs) <= 8
        assert trained.n_sessions == 2
        assert len(trained.support_units) > 0

    def test_support_excludes_failed_and_duplicate_configs(self, hadoop_kb):
        kb, system = hadoop_kb
        matrix = build_matrices(kb, "hadoop", system.config_space)["wordcount"]
        trained = train_surrogate(matrix, kb.version())
        support = {np.asarray(row).tobytes() for row in trained.support_units}
        assert len(support) == len(trained.support_units)  # deduplicated
        for row in matrix.X_knobs[matrix.failed]:
            assert row.tobytes() not in support  # crash veto

    def test_predictions_finite_with_uncertainty(
        self, trained, target_fingerprint
    ):
        X = np.asarray(trained.support_units[:5], dtype=float)
        mu, sd = trained.predict(X, target_fingerprint)
        assert np.isfinite(mu).all()
        assert sd is not None and np.isfinite(sd).all() and (sd >= 0).all()

    def test_too_few_rows_raises(self, hadoop_kb):
        kb, system = hadoop_kb
        matrix = build_matrices(kb, "hadoop", system.config_space)["wordcount"]
        starved = type(matrix)(**{**matrix.__dict__})
        starved.failed = np.ones_like(matrix.failed)
        with pytest.raises(SurrogateError, match="successful rows"):
            train_surrogate(starved, kb.version())

    def test_forced_single_model_skips_holdout(self, hadoop_kb):
        kb, system = hadoop_kb
        matrix = build_matrices(kb, "hadoop", system.config_space)["wordcount"]
        trained = train_surrogate(matrix, kb.version(), models=("gp",))
        assert trained.model_kind == "gp"
        assert trained.holdout_rmse == {}

    def test_serialization_round_trip_predicts_identically(
        self, trained, target_fingerprint
    ):
        payload = json.loads(json.dumps(trained.to_jsonable(), allow_nan=False))
        restored = TrainedSurrogate.from_jsonable(payload)
        assert restored.model_kind == trained.model_kind
        assert restored.kb_version == trained.kb_version
        assert restored.support_units == trained.support_units
        X = np.asarray(trained.support_units, dtype=float)
        mu_a, _ = trained.predict(X, target_fingerprint)
        mu_b, _ = restored.predict(X, target_fingerprint)
        np.testing.assert_array_equal(mu_a, mu_b)

    def test_rejects_wrong_payload_kind(self):
        with pytest.raises(SurrogateError, match="trained_surrogate"):
            TrainedSurrogate.from_jsonable({"kind": "nonsense"})


# ---------------------------------------------------------------------------
# Registry: version-stamped cache with invalidation on ingest
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_invalidation_on_ingest(self):
        """Acceptance pin: fresh hit reuses the model, ingest retrains."""
        system = HadoopSimulator()
        space = system.config_space
        store = SurrogateStore()
        with KnowledgeBase(":memory:") as kb:
            _populate(kb, system, [wordcount(6), wordcount(12)])
            first = store.get(kb, "hadoop", "wordcount", space)
            assert first is not None
            assert store.trains == 1
            again = store.get(kb, "hadoop", "wordcount", space)
            assert again is first  # version match: cache hit, no retrain
            assert store.trains == 1
            # Any ingest bumps the KB version and invalidates the model.
            history = _explore(system, wordcount(8), 8, seed=77)
            kb.ingest_history(system, wordcount(8), history, seed=77)
            refreshed = store.get(kb, "hadoop", "wordcount", space)
            assert store.trains == 2
            assert refreshed.kb_version == tuple(kb.version())
            assert refreshed.kb_version != first.kb_version

    def test_train_false_serves_only_fresh_cache(self):
        system = HadoopSimulator()
        store = SurrogateStore()
        with KnowledgeBase(":memory:") as kb:
            _populate(kb, system, [wordcount(6)])
            assert store.get(
                kb, "hadoop", "wordcount", system.config_space, train=False
            ) is None
            assert store.trains == 0

    def test_disk_persistence_survives_restart(self, tmp_path, hadoop_kb):
        kb, system = hadoop_kb
        space = system.config_space
        store = SurrogateStore(str(tmp_path / "models"))
        assert store.get(kb, "hadoop", "wordcount", space) is not None
        assert store.trains == 1
        # A new store over the same directory warm-loads without training.
        reborn = SurrogateStore(str(tmp_path / "models"))
        model = reborn.get(kb, "hadoop", "wordcount", space)
        assert model is not None
        assert reborn.trains == 0
        assert model.kb_version == tuple(kb.version())

    def test_status_reports_freshness(self, hadoop_kb):
        kb, system = hadoop_kb
        store = SurrogateStore()
        store.get(kb, "hadoop", "wordcount", system.config_space)
        status = store.status(kb)
        assert status["n_models"] == 1
        assert status["trains"] == 1
        assert status["models"][0]["fresh"] is True
        json.dumps(status, allow_nan=False)  # strict-JSON safe


# ---------------------------------------------------------------------------
# Recommender
# ---------------------------------------------------------------------------
class TestRecommend:
    def test_rank_configs_orders_by_prediction(
        self, trained, hadoop_kb, target_fingerprint
    ):
        _, system = hadoop_kb
        ranked = rank_configs(trained, system.config_space, target_fingerprint)
        assert ranked
        mus = [mu for _, mu, _ in ranked]
        assert mus == sorted(mus)
        for config, _, _ in ranked[:5]:
            assert set(config.to_dict()) == set(system.config_space.names())

    def test_space_mismatch_yields_empty(self, trained, target_fingerprint):
        other_space = DbmsSimulator().config_space
        assert rank_configs(trained, other_space, target_fingerprint) == []

    def test_recommendation_gates_on_confidence(
        self, trained, hadoop_kb, target_fingerprint
    ):
        _, system = hadoop_kb
        confident = recommend_config(
            trained, system.config_space, target_fingerprint,
            confidence_threshold=math.inf,
        )
        assert confident is not None and confident.confident
        assert confident.predicted_runtime_s > 0
        gated = recommend_config(
            trained, system.config_space, target_fingerprint,
            confidence_threshold=0.0,
        )
        assert gated is not None and not gated.confident

    def test_surrogate_prior_rows(self, trained, hadoop_kb, target_fingerprint):
        _, system = hadoop_kb
        rows = surrogate_prior(
            trained, system.config_space, target_fingerprint, k=3
        )
        assert 0 < len(rows) <= 3
        for row in rows:
            assert isinstance(row, PriorObservation)
            assert row.source_workload == "surrogate:wordcount"
            assert row.source_session == -1
            assert math.isfinite(row.runtime_s) and row.runtime_s > 0


# ---------------------------------------------------------------------------
# Service wiring (in-process and over HTTP)
# ---------------------------------------------------------------------------
class TestServiceSurrogateMode:
    def test_serves_zero_probe_from_kb(self, hadoop_kb):
        kb, _ = hadoop_kb
        service = RecommendationService(kb)
        response = service.recommend(
            {"workload": "wordcount-6g", "system_kind": "hadoop",
             "mode": "surrogate"}
        )
        assert response["mode"] == "surrogate"
        assert response["served_by"] == "surrogate"
        assert response["fallback_reason"] is None
        assert response["recommended"]["from_surrogate"] == "wordcount"
        assert response["recommended"]["expected_runtime_s"] > 0
        assert set(response["recommended"]["config"])
        status = service.surrogate_status()
        assert status["trains"] == 1

    def test_low_confidence_falls_back_to_similarity(self, hadoop_kb):
        """Acceptance pin: an impossible gate forces the fallback."""
        kb, _ = hadoop_kb
        service = RecommendationService(kb, confidence_threshold=0.0)
        response = service.recommend(
            {"workload": "wordcount-6g", "system_kind": "hadoop",
             "mode": "surrogate"}
        )
        assert response["served_by"] == "similarity-fallback"
        assert response["fallback_reason"] == "low-confidence"
        assert response["surrogate"] is not None  # diagnostics kept
        # ... and the answer is exactly the similarity recommendation.
        assert response["recommended"]["from_session"] is not None

    def test_empty_kb_is_a_client_error(self):
        with KnowledgeBase(":memory:") as kb:
            service = RecommendationService(kb)
            with pytest.raises(ServiceError):
                service.recommend(
                    {"workload": "anything", "mode": "surrogate"}
                )

    def test_unknown_workload_is_a_client_error(self, hadoop_kb):
        kb, _ = hadoop_kb
        service = RecommendationService(kb)
        with pytest.raises(ServiceError, match="unknown workload"):
            service.recommend(
                {"workload": "no-such-workload", "mode": "surrogate"}
            )

    def test_unknown_mode_rejected(self, hadoop_kb):
        kb, _ = hadoop_kb
        service = RecommendationService(kb)
        with pytest.raises(ServiceError, match="mode"):
            service.recommend({"workload": "wordcount-6g", "mode": "oracle"})


class TestServiceOverHttp:
    def test_all_failed_training_session_strict_json(self):
        """Surrogate mode over real HTTP with a KB whose only session
        crashed every run: the reply must fall back, carry no Infinity
        literals, and stay parseable strict JSON."""
        system = HadoopSimulator()
        workload = wordcount(6)
        space = system.config_space
        history = TuningHistory()
        # Feasible per the space's constraints, but the sort buffer plus
        # JVM overhead exceeds the map container: deterministic OOM.
        hog = space.partial(
            {"mapreduce_map_memory_mb": 391, "io_sort_mb": 254}
        )
        for i in range(6):
            history.record(Observation(
                config=hog, measurement=system.run(workload, hog),
                tag="default" if i == 0 else f"crash-{i}",
                workload=workload.name,
            ))
        assert all(not obs.ok for obs in history)

        with KnowledgeBase(":memory:") as kb:
            kb.ingest_history(system, workload, history)
            server = make_server(kb, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = server.server_address[:2]
                req = urllib.request.Request(
                    f"http://{host}:{port}/recommend",
                    data=json.dumps({
                        "workload": workload.name,
                        "system_kind": "hadoop",
                        "mode": "surrogate",
                    }).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req, timeout=10) as resp:
                    body = resp.read().decode()
                    assert resp.status == 200
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
        assert "Infinity" not in body and "NaN" not in body
        response = json.loads(body)
        assert response["served_by"] == "similarity-fallback"
        assert response["fallback_reason"] == "no-model"  # all rows failed
        assert response["recommended"] is None  # nothing finite to replay

    def test_surrogate_status_endpoint(self, hadoop_kb):
        kb, _ = hadoop_kb
        server = make_server(kb, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/surrogate/status", timeout=10
            ) as resp:
                assert resp.status == 200
                status = json.loads(resp.read())
            assert status["n_models"] == 0  # nothing trained yet
            assert status["kb_version"] == list(kb.version())
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ---------------------------------------------------------------------------
# Fleet integration
# ---------------------------------------------------------------------------
class TestFleetSurrogatePriors:
    def test_controller_stacks_surrogate_rows(self):
        from repro.fleet import FleetController, TenantSpec

        system = HadoopSimulator()
        store = SurrogateStore()
        with KnowledgeBase(":memory:") as kb:
            _populate(kb, system, [wordcount(6), wordcount(12)])
            spec = TenantSpec(
                name="t0", system=HadoopSimulator(),
                workloads=[wordcount(8)], episode_budget=4,
            )
            controller = FleetController(
                [spec], epochs=2, seed=0, kb=kb, surrogate_store=store,
            )
            report = controller.run()
        assert report["epochs_done"] == 2
        assert store.trains >= 1  # the prior path exercised the registry

    def test_default_controller_has_no_surrogate_store(self):
        from repro.fleet import FleetController, TenantSpec

        spec = TenantSpec(
            name="t0", system=DbmsSimulator(),
            workloads=[olap_analytics(0.3)], episode_budget=4,
        )
        controller = FleetController([spec], epochs=1, seed=0)
        assert controller.surrogate_store is None
