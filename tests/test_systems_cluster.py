"""Tests for the cluster/node resource model."""

import pytest

from repro.systems.cluster import Cluster, NodeSpec


class TestNodeSpec:
    def test_defaults_valid(self):
        node = NodeSpec()
        assert node.cores >= 1 and node.memory_mb >= 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"cpu_speed": 0},
            {"memory_mb": 64},
            {"disk_read_mbps": -1},
            {"network_mbps": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)

    def test_scaled(self):
        node = NodeSpec()
        old = node.scaled(cpu=0.5, mem=0.5, disk=0.5)
        assert old.cpu_speed == pytest.approx(node.cpu_speed * 0.5)
        assert old.memory_mb == node.memory_mb // 2
        assert old.disk_read_mbps == pytest.approx(node.disk_read_mbps * 0.5)
        assert old.network_mbps == node.network_mbps  # unscaled axis

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NodeSpec().cores = 4


class TestCluster:
    def test_uniform(self):
        cluster = Cluster.uniform(4)
        assert len(cluster) == 4
        assert not cluster.is_heterogeneous
        assert cluster.straggler_factor() == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])
        with pytest.raises(ValueError):
            Cluster.uniform(0)

    def test_heterogeneous(self):
        new = NodeSpec()
        old = new.scaled(cpu=0.5)
        cluster = Cluster.heterogeneous([(2, new), (2, old)])
        assert cluster.is_heterogeneous
        assert cluster.straggler_factor() > 1.0
        assert cluster.min_node == old

    def test_aggregates(self):
        cluster = Cluster.uniform(3, NodeSpec(cores=4, memory_mb=8192))
        assert cluster.total_cores == 12
        assert cluster.total_memory_mb == 3 * 8192

    def test_mean_speeds(self):
        fast = NodeSpec(cpu_speed=1.0)
        slow = fast.scaled(cpu=0.5)
        cluster = Cluster.heterogeneous([(1, fast), (1, slow)])
        assert cluster.mean_cpu_speed() == pytest.approx(0.75)

    def test_straggler_bounded_by_slowest(self):
        fast = NodeSpec()
        slow = fast.scaled(cpu=0.25)
        cluster = Cluster.heterogeneous([(7, fast), (1, slow)])
        # mean speed dominated by the fast nodes; slow node sets the pace
        assert cluster.straggler_factor() > 2.0
