"""Tests for the cold-vs-warm transfer benchmark."""

import numpy as np
import pytest

from repro.bench.transfer import (
    TRANSFER_CELLS,
    _run_cell,
    evals_to_threshold,
)
from repro.core import Budget
from repro.systems.dbms import DbmsSimulator, olap_analytics
from repro.tuners import RandomSearchTuner


@pytest.fixture(scope="module")
def cells():
    """The two cheapest cells, each a full populate→cold→warm scenario."""
    return {
        ("dbms", "ituned"): _run_cell("dbms", "ituned", quick=True),
        ("dbms", "bayesopt"): _run_cell("dbms", "bayesopt", quick=True),
    }


class TestEvalsToThreshold:
    def test_counts_real_runs_one_based(self):
        system = DbmsSimulator()
        result = RandomSearchTuner().tune(
            system, olap_analytics(), Budget(max_runs=6),
            np.random.default_rng(0),
        )
        # threshold equal to the final best is met exactly at the run
        # where the incumbent last improved
        idx = evals_to_threshold(result, result.best_runtime_s)
        assert 1 <= idx <= 6
        # an unreachable threshold is never met
        assert evals_to_threshold(result, result.best_runtime_s / 100) is None
        # a trivial threshold is met by the first real run
        assert evals_to_threshold(result, float("inf")) == 1


class TestTransferCells:
    def test_cell_structure(self, cells):
        for cell in cells.values():
            assert cell["n_prior_observations"] > 0
            assert cell["target_workload"] not in cell["prior_workloads"]
            assert {m["workload"] for m in cell["matched_workloads"]} <= set(
                cell["prior_workloads"]
            )
            assert cell["cold_runs"] <= 24 and cell["warm_runs"] <= 24

    def test_warm_start_meets_acceptance_bar(self, cells):
        """Acceptance: warm start reaches within 5% of the cold-start
        best in >=30% fewer evaluations for >=2 tuner×system pairs."""
        winners = [
            key for key, cell in cells.items()
            if cell["warm_reached_threshold"]
            and cell["eval_savings"] is not None
            and cell["eval_savings"] >= 0.30
        ]
        assert len(winners) >= 2, f"savings below bar: {cells}"

    def test_cells_are_deterministic(self, cells):
        """Re-running a cell reproduces it bit-for-bit (fixed seed)."""
        again = _run_cell("dbms", "ituned", quick=True)
        first = dict(cells[("dbms", "ituned")])
        again.pop("wall_s"), first.pop("wall_s")
        assert again == first

    def test_matrix_covers_required_pairs(self):
        assert len(TRANSFER_CELLS) >= 4
        assert len({system for system, _ in TRANSFER_CELLS}) >= 2
        assert ("dbms", "ottertune") in TRANSFER_CELLS
