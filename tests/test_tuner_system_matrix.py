"""Integration matrix: every registered tuner runs on every system.

The framework's central promise is that any tuner composes with any
system through the core contracts; this test enforces it for the full
registry with a small budget, including result invariants:

* the budget is respected;
* the recommendation is a valid configuration of the system's space;
* the reported best runtime is finite whenever any run succeeded.
"""

import math

import numpy as np
import pytest

from repro import Budget, make_tuner, tuner_names
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, adhoc_query, htap_mixed, olap_analytics
from repro.systems.hadoop import HadoopSimulator, terasort
from repro.systems.spark import SparkSimulator, spark_sort
from repro.tuners import build_repository

_CLUSTER = Cluster.uniform(4)
_SYSTEMS = {
    "dbms": (DbmsSimulator(_CLUSTER), htap_mixed(0.3)),
    "hadoop": (HadoopSimulator(_CLUSTER), terasort(2.0)),
    "spark": (SparkSimulator(_CLUSTER), spark_sort(2.0)),
}
_BUDGET = Budget(max_runs=8)


def _instantiate(name: str, system):
    if name == "ottertune":
        repo = build_repository(
            system,
            [olap_analytics(0.3)] if system.kind == "dbms" else [],
            n_samples=12,
            rng=np.random.default_rng(7),
        ) if system.kind == "dbms" else None
        if repo is None:
            pytest.skip("ottertune needs a same-system repository")
        return make_tuner(name, repository=repo)
    if name == "nn-tuner":
        return make_tuner(name, epochs=60)
    if name == "ensemble":
        return make_tuner(name, mlp_epochs=60)
    if name in ("cost-model", "trace-sim"):
        return make_tuner(name, n_model_samples=150)
    if name == "genetic":
        return make_tuner(name, population=4, elite=1)
    return make_tuner(name)


@pytest.mark.parametrize("system_kind", sorted(_SYSTEMS))
@pytest.mark.parametrize("tuner_name", tuner_names())
def test_every_tuner_on_every_system(tuner_name, system_kind):
    system, workload = _SYSTEMS[system_kind]
    tuner = _instantiate(tuner_name, system)
    result = tuner.tune(system, workload, _BUDGET, rng=np.random.default_rng(3))

    assert result.n_real_runs <= _BUDGET.max_runs
    # The recommendation is valid in this system's space.
    system.config_space.configuration(result.best_config.to_dict())
    # If anything succeeded, the reported runtime is finite and the
    # recommendation never loses to the default by more than noise.
    successes = [
        o for o in result.history.successful()
        if o.workload in ("", workload.name)
    ]
    if successes:
        assert math.isfinite(result.best_runtime_s)
        default_runs = [
            o.runtime_s for o in successes
            if o.config == system.default_configuration()
        ]
        if default_runs:
            assert result.best_runtime_s <= min(default_runs) * 1.001
