"""Tests for the adaptive (online) tuner family."""

import math

import numpy as np
import pytest

from repro.core import Budget, InstrumentedSystem
from repro.core.tuner import OnlineTuner
from repro.core.workload import StreamPhase, WorkloadStream
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics
from repro.systems.spark import SparkSimulator, spark_sort, spark_sql_join
from repro.tuners import (
    ColtOnlineTuner,
    DynamicPartitionTuner,
    MrMoulderTuner,
    OnlineMemoryTuner,
)


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def dbms():
    return DbmsSimulator(Cluster.uniform(4))


@pytest.fixture(scope="module")
def spark():
    return SparkSimulator(Cluster.uniform(4))


class TestColt:
    def test_adapts_on_stream(self, dbms):
        stream = WorkloadStream.constant(htap_mixed(0.5), 12)
        result = ColtOnlineTuner().tune_stream(dbms, stream, rng())
        assert len(result.steps) == 12
        first = result.steps[0].measurement.runtime_s
        tail = result.mean_runtime_tail(3)
        assert tail < first
        assert result.n_reconfigurations >= 1

    def test_switch_cost_gate(self, dbms):
        # With an absurd reconfiguration cost, COLT must never switch.
        stream = WorkloadStream.constant(htap_mixed(0.5), 8)
        result = ColtOnlineTuner(reconfig_cost_s=1e9).tune_stream(dbms, stream, rng())
        assert result.n_reconfigurations == 0

    def test_recovers_from_failure(self, dbms):
        # A stream long enough that exploration may hit the OOM region:
        # after any failure the next step must run the safe default.
        stream = WorkloadStream.constant(htap_mixed(0.5), 16)
        result = ColtOnlineTuner(step_scale=0.5).tune_stream(dbms, stream, rng(3))
        for i, step in enumerate(result.steps[:-1]):
            if not step.measurement.ok:
                assert result.steps[i + 1].measurement.ok

    def test_offline_interface_via_template(self, dbms):
        result = ColtOnlineTuner().tune(
            dbms, htap_mixed(0.5), Budget(max_runs=10), rng()
        )
        assert result.n_real_runs == 10
        assert math.isfinite(result.best_runtime_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            ColtOnlineTuner(epoch=0)


class TestMrMoulder:
    def test_learns_within_phase(self, dbms):
        stream = WorkloadStream.constant(htap_mixed(0.5), 14)
        result = MrMoulderTuner().tune_stream(dbms, stream, rng())
        runtimes = [r for r in result.runtimes() if math.isfinite(r)]
        assert min(runtimes[:3]) >= min(runtimes)  # later exploration found better or equal

    def test_case_base_transfers_across_phases(self, dbms):
        wl = htap_mixed(0.5)
        tuner = MrMoulderTuner()
        stream1 = WorkloadStream.constant(wl, 10)
        first = tuner.tune_stream(dbms, stream1, rng())
        best_learned = min(
            r for r in first.runtimes() if math.isfinite(r)
        )
        # A new stream of the same workload starts from the learned case.
        stream2 = WorkloadStream.constant(wl, 2)
        second = tuner.tune_stream(dbms, stream2, rng(1))
        assert second.steps[0].measurement.runtime_s <= best_learned * 1.1

    def test_recommend_cold_start_is_default(self, dbms):
        tuner = MrMoulderTuner()
        default = dbms.default_configuration()
        assert tuner.recommend(htap_mixed(0.5), default) == default


class TestDynamicPartition:
    def test_adjusts_partitions_only(self, spark):
        stream = WorkloadStream.constant(spark_sort(4.0), 10)
        result = DynamicPartitionTuner().tune_stream(spark, stream, rng())
        default = spark.default_configuration()
        for step in result.steps:
            for knob in default:
                if knob != "shuffle_partitions":
                    assert step.config[knob] == default[knob]

    def test_grows_partitions_on_spill(self, spark):
        # Big per-task data under default partitions spills -> grow.
        stream = WorkloadStream.constant(spark_sort(32.0), 6)
        result = DynamicPartitionTuner().tune_stream(spark, stream, rng())
        default = spark.default_configuration()["shuffle_partitions"]
        last = result.steps[-1].config["shuffle_partitions"]
        assert last > default

    def test_shrinks_partitions_on_overhead(self, spark):
        from repro.systems.spark import spark_streaming_batches

        stream = WorkloadStream.constant(
            spark_streaming_batches(batch_mb=32, n_batches=5), 6
        )
        result = DynamicPartitionTuner().tune_stream(spark, stream, rng())
        first = result.steps[0].config["shuffle_partitions"]
        last = result.steps[-1].config["shuffle_partitions"]
        assert last < first

    def test_non_spark_system_passthrough(self, dbms):
        stream = WorkloadStream.constant(htap_mixed(0.5), 3)
        result = DynamicPartitionTuner().tune_stream(dbms, stream, rng())
        assert result.n_reconfigurations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicPartitionTuner(grow=0.9)


class TestOnlineMemory:
    def test_reconfigures_memory_knobs(self, dbms):
        stream = WorkloadStream.constant(olap_analytics(0.5), 10)
        result = OnlineMemoryTuner().tune_stream(dbms, stream, rng())
        assert result.n_reconfigurations >= 1
        configs = {s.config["work_mem_mb"] for s in result.steps}
        assert len(configs) > 1

    def test_does_not_blow_up(self, dbms):
        stream = WorkloadStream.constant(olap_analytics(0.5), 12)
        result = OnlineMemoryTuner().tune_stream(dbms, stream, rng())
        runtimes = [r for r in result.runtimes() if math.isfinite(r)]
        assert result.mean_runtime_tail(3) <= runtimes[0] * 1.3

    def test_non_dbms_passthrough(self, spark):
        stream = WorkloadStream.constant(spark_sort(4.0), 3)
        result = OnlineMemoryTuner().tune_stream(spark, stream, rng())
        assert result.n_reconfigurations == 0


class TestStreamResultApi:
    def test_total_and_tail(self, dbms):
        stream = WorkloadStream.constant(htap_mixed(0.5), 5)
        result = ColtOnlineTuner().tune_stream(dbms, stream, rng())
        assert result.total_runtime_s > 0
        assert result.mean_runtime_tail(2) > 0
        assert len(result.runtimes()) == 5

    def test_all_online_tuners_are_online(self):
        for cls in (ColtOnlineTuner, MrMoulderTuner, DynamicPartitionTuner, OnlineMemoryTuner):
            assert issubclass(cls, OnlineTuner)
            assert cls.category == "adaptive"
