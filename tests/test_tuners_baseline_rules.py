"""Tests for baseline tuners and the rule-based family."""

import numpy as np
import pytest

from repro.core import Budget
from repro.systems.cluster import Cluster, NodeSpec
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics
from repro.systems.hadoop import HadoopSimulator, terasort
from repro.systems.spark import SparkSimulator, spark_sort
from repro.tuners import (
    ConfigNavigator,
    DefaultConfigTuner,
    GridSearchTuner,
    RandomSearchTuner,
    RuleBasedTuner,
    SpexValidator,
    TuningRule,
)


@pytest.fixture
def dbms():
    return DbmsSimulator(Cluster.uniform(4))


@pytest.fixture
def olap():
    return olap_analytics(0.5)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBaselines:
    def test_default_tuner_one_run(self, dbms, olap):
        result = DefaultConfigTuner().tune(dbms, olap, Budget(max_runs=5), rng())
        assert result.n_real_runs == 1
        assert result.best_config == dbms.default_configuration()

    def test_random_search_uses_full_budget(self, dbms, olap):
        result = RandomSearchTuner().tune(dbms, olap, Budget(max_runs=12), rng())
        assert result.n_real_runs == 12

    def test_random_search_never_worse_than_default(self, dbms, olap):
        default = dbms.run(olap, dbms.default_configuration()).runtime_s
        result = RandomSearchTuner().tune(dbms, olap, Budget(max_runs=10), rng())
        assert result.best_runtime_s <= default * 1.0001

    def test_random_search_seeded(self, dbms, olap):
        a = RandomSearchTuner().tune(dbms, olap, Budget(max_runs=8), rng(5))
        b = RandomSearchTuner().tune(dbms, olap, Budget(max_runs=8), rng(5))
        assert a.best_config == b.best_config

    def test_grid_search_covers_named_knobs(self, dbms, olap):
        tuner = GridSearchTuner(knobs=["buffer_pool_mb", "work_mem_mb"], levels=3)
        result = tuner.tune(dbms, olap, Budget(max_runs=20), rng())
        # default + 3x3 grid
        assert result.n_real_runs == 10
        tried = {o.config["buffer_pool_mb"] for o in result.history.real_observations()}
        assert len(tried) >= 3

    def test_grid_search_respects_budget(self, dbms, olap):
        tuner = GridSearchTuner(knobs=["buffer_pool_mb", "work_mem_mb"], levels=5)
        result = tuner.tune(dbms, olap, Budget(max_runs=7), rng())
        assert result.n_real_runs == 7

    def test_grid_levels_validation(self):
        with pytest.raises(ValueError):
            GridSearchTuner(levels=1)


class TestRuleBasedTuner:
    @pytest.mark.parametrize(
        "system,workload",
        [
            (DbmsSimulator(Cluster.uniform(4)), htap_mixed(0.5)),
            (HadoopSimulator(Cluster.uniform(4)), terasort(4.0)),
            (SparkSimulator(Cluster.uniform(4)), spark_sort(4.0)),
        ],
        ids=["dbms", "hadoop", "spark"],
    )
    def test_rules_improve_over_default(self, system, workload):
        default = system.run(workload, system.default_configuration()).runtime_s
        result = RuleBasedTuner().tune(system, workload, Budget(max_runs=2), rng())
        assert result.n_real_runs == 2
        assert result.best_runtime_s <= default * 1.0001
        assert result.extras["rules_applied"]

    def test_rule_config_feasible(self, dbms, olap):
        result = RuleBasedTuner().tune(dbms, olap, Budget(max_runs=2), rng())
        # constructing the Configuration would have raised otherwise
        assert result.best_config is not None

    def test_extra_rules_applied(self, dbms, olap):
        marker = TuningRule(
            "extra", "test", lambda node, cl, sig: {"io_concurrency": 128}
        )
        tuner = RuleBasedTuner(extra_rules=[marker])
        result = tuner.tune(dbms, olap, Budget(max_runs=2), rng())
        assert "extra" in result.extras["rules_applied"]

    def test_rules_scale_with_node_memory(self):
        small = DbmsSimulator(Cluster.uniform(1, NodeSpec(memory_mb=4096)))
        big = DbmsSimulator(Cluster.uniform(1, NodeSpec(memory_mb=65536)))
        tuner = RuleBasedTuner()
        wl = olap_analytics(0.2)
        rs = tuner.tune(small, wl, Budget(max_runs=2), rng())
        rb = tuner.tune(big, wl, Budget(max_runs=2), rng())
        if rs.best_config != small.default_configuration() and rb.best_config != big.default_configuration():
            assert rb.best_config["buffer_pool_mb"] > rs.best_config["buffer_pool_mb"]


class TestSpexValidator:
    def test_detects_domain_violation(self, dbms):
        validator = SpexValidator(dbms.config_space)
        values = dbms.default_configuration().to_dict()
        values["work_mem_mb"] = -5
        assert any(v.startswith("domain:") for v in validator.violations(values))

    def test_detects_constraint_violation(self, dbms):
        validator = SpexValidator(dbms.config_space)
        values = dbms.default_configuration().to_dict()
        values["buffer_pool_mb"] = dbms.config_space["buffer_pool_mb"].high
        values["wal_buffers_mb"] = 1024
        values["temp_buffers_mb"] = 1024
        assert any(v.startswith("constraint:") for v in validator.violations(values))

    def test_clean_config_passes(self, dbms):
        validator = SpexValidator(dbms.config_space)
        assert validator.violations(dbms.default_configuration().to_dict()) == []

    def test_repair_reaches_feasibility(self, dbms):
        validator = SpexValidator(dbms.config_space)
        values = dbms.default_configuration().to_dict()
        values["buffer_pool_mb"] = 10 ** 9
        values["wal_buffers_mb"] = 10 ** 9
        repaired = validator.repair_values(values)
        assert dbms.config_space.is_feasible(repaired)
        dbms.config_space.configuration(repaired)  # must not raise

    def test_repair_preserves_valid_values(self, dbms):
        validator = SpexValidator(dbms.config_space)
        values = dbms.default_configuration().to_dict()
        values["io_concurrency"] = 64
        repaired = validator.repair_values(values)
        assert repaired["io_concurrency"] == 64


class TestConfigNavigator:
    @pytest.mark.parametrize("kind", ["dbms", "hadoop", "spark"])
    def test_ranking_puts_impactful_first(self, kind):
        import importlib

        nav = ConfigNavigator()
        ranked = nav.ranked_knobs(kind)
        module = importlib.import_module(f"repro.systems.{kind}.knobs")
        impact = module.GROUND_TRUTH_IMPACT
        # The first quarter of the ranking is all tier >= 1.
        head = ranked[: len(ranked) // 4]
        assert all(impact[k] >= 1 for k in head)

    def test_navigated_space(self, dbms):
        nav = ConfigNavigator()
        reduced = nav.navigated_space(dbms.config_space, "dbms", top_k=6)
        assert len(reduced) == 6
