"""Tests for the extension tuners: Ernest, Gunther GA, MRTuner,
ensemble."""

import math

import numpy as np
import pytest

from repro.core import Budget
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed
from repro.systems.hadoop import HadoopSimulator, terasort, wordcount
from repro.systems.spark import SparkSimulator, spark_sort
from repro.tuners import (
    EnsembleTuner,
    ErnestTuner,
    GeneticTuner,
    MrTunerTuner,
    ptc_breakdown,
)
from repro.tuners.ml.ernest import ernest_features, fit_ernest_model, predict_ernest


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def cluster():
    return Cluster.uniform(8)


class TestErnestModel:
    def test_features_shape(self):
        f = ernest_features(0.5, 4)
        assert f.shape == (4,)
        assert f[0] == 1.0

    def test_fit_recovers_scaling_law(self):
        # Synthesize data from a known model and recover predictions.
        true = np.array([2.0, 30.0, 0.5, 0.05])
        points = []
        for s in (0.1, 0.25, 0.5):
            for m in (1, 2, 4, 8):
                points.append((s, m, float(true @ ernest_features(s, m))))
        coef = fit_ernest_model(points)
        for s, m, t in points:
            assert predict_ernest(coef, s, m) == pytest.approx(t, rel=0.05)

    def test_fit_coefficients_nonnegative(self):
        points = [(0.1, m, 10.0 / m + 1.0) for m in (1, 2, 4, 8)]
        coef = fit_ernest_model(points)
        assert (coef >= 0).all()

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_ernest_model([(0.1, 1, 5.0)])

    def test_invalid_plan(self):
        with pytest.raises(ValueError):
            ErnestTuner(sample_plan=((1.5, 2), (0.1, 2), (0.1, 4), (0.2, 8)))
        with pytest.raises(ValueError):
            ErnestTuner(sample_plan=((0.1, 2),))


class TestErnestTuner:
    def test_tunes_spark_parallelism_cheaply(self, cluster):
        spark = SparkSimulator(cluster)
        wl = spark_sort(8.0)
        base = spark.run(wl, spark.default_configuration()).runtime_s
        result = ErnestTuner().tune(spark, wl, Budget(max_runs=20), rng(1))
        assert result.best_runtime_s < base
        # Training happened on sampled data: the experiment time is a
        # fraction of even ONE untuned full-scale run.
        assert result.experiment_time_s < base * 20
        assert "ernest_coefficients" in result.extras
        assert result.best_config["num_executors"] > spark.default_configuration()["num_executors"]

    def test_degrades_gracefully_on_dbms(self, cluster):
        dbms = DbmsSimulator(cluster)
        wl = htap_mixed(0.5)
        result = ErnestTuner().tune(dbms, wl, Budget(max_runs=18), rng(1))
        assert math.isfinite(result.best_runtime_s)


class TestGeneticTuner:
    def test_improves_on_hadoop(self, cluster):
        hadoop = HadoopSimulator(cluster)
        wl = terasort(4.0)
        base = hadoop.run(wl, hadoop.default_configuration()).runtime_s
        result = GeneticTuner().tune(hadoop, wl, Budget(max_runs=30), rng(1))
        assert result.best_runtime_s < base / 2
        assert result.extras["generations"] >= 2

    def test_elitism_preserves_incumbent(self, cluster):
        dbms = DbmsSimulator(cluster)
        wl = htap_mixed(0.5)
        result = GeneticTuner(population=6, elite=2).tune(
            dbms, wl, Budget(max_runs=24), rng(2)
        )
        # Incumbent trajectory never regresses (guaranteed by elitism +
        # incumbent bookkeeping).
        traj = [b for _, b in result.history.incumbent_trajectory()]
        assert all(x >= y for x, y in zip(traj, traj[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneticTuner(population=2)
        with pytest.raises(ValueError):
            GeneticTuner(population=6, elite=6)


class TestMrTuner:
    def test_ptc_breakdown_phases(self, cluster):
        hadoop = HadoopSimulator(cluster)
        wl = terasort(8.0)
        phases = ptc_breakdown(wl, hadoop.default_configuration(), cluster)
        assert set(phases) == {"producer", "transporter", "consumer"}
        assert all(v >= 0 for v in phases.values())
        # With one reducer, the consumer dominates.
        assert phases["consumer"] > phases["producer"]

    def test_more_reducers_shift_bottleneck(self, cluster):
        hadoop = HadoopSimulator(cluster)
        wl = terasort(8.0)
        few = ptc_breakdown(
            wl, hadoop.config_space.partial({"mapreduce_job_reduces": 1}), cluster
        )
        many = ptc_breakdown(
            wl, hadoop.config_space.partial({"mapreduce_job_reduces": 128}), cluster
        )
        assert many["consumer"] < few["consumer"]

    def test_tunes_hadoop_in_few_runs(self, cluster):
        hadoop = HadoopSimulator(cluster)
        wl = wordcount(8.0)
        base = hadoop.run(wl, hadoop.default_configuration()).runtime_s
        result = MrTunerTuner().tune(hadoop, wl, Budget(max_runs=5), rng(1))
        assert result.n_real_runs <= 5
        assert result.best_runtime_s < base / 3
        assert result.extras["ptc_candidates"] > 50
        assert result.extras["ptc_bottleneck"] in ("producer", "transporter", "consumer")

    def test_degrades_on_non_hadoop(self, cluster):
        dbms = DbmsSimulator(cluster)
        result = MrTunerTuner().tune(dbms, htap_mixed(0.5), Budget(max_runs=3), rng(1))
        assert result.best_config == dbms.default_configuration()


class TestEnsembleTuner:
    def test_improves_over_default(self, cluster):
        dbms = DbmsSimulator(cluster)
        wl = htap_mixed(0.5)
        base = dbms.run(wl, dbms.default_configuration()).runtime_s
        result = EnsembleTuner(mlp_epochs=100).tune(dbms, wl, Budget(max_runs=16), rng(1))
        assert result.best_runtime_s < base

    def test_records_committee_predictions(self, cluster):
        dbms = DbmsSimulator(cluster)
        wl = htap_mixed(0.5)
        result = EnsembleTuner(mlp_epochs=50).tune(dbms, wl, Budget(max_runs=12), rng(1))
        assert any(o.tag == "committee" for o in result.history)


class TestCrossEntropyTuner:
    def test_improves_over_default(self, cluster):
        from repro.tuners import CrossEntropyTuner

        dbms = DbmsSimulator(cluster)
        wl = htap_mixed(0.5)
        base = dbms.run(wl, dbms.default_configuration()).runtime_s
        result = CrossEntropyTuner(batch=6).tune(
            dbms, wl, Budget(max_runs=26), rng(1)
        )
        assert result.best_runtime_s < base
        assert result.extras["cem_generations"] >= 3

    def test_policy_contracts_over_generations(self, cluster):
        from repro.tuners import CrossEntropyTuner

        dbms = DbmsSimulator(cluster)
        wl = htap_mixed(0.5)
        tuner = CrossEntropyTuner(batch=6, init_std=0.35)
        result = tuner.tune(dbms, wl, Budget(max_runs=30), rng(2))
        assert result.extras["cem_final_std"] < 0.35

    def test_validation(self):
        from repro.tuners import CrossEntropyTuner

        with pytest.raises(ValueError):
            CrossEntropyTuner(batch=2)
        with pytest.raises(ValueError):
            CrossEntropyTuner(elite_frac=1.5)
        with pytest.raises(ValueError):
            CrossEntropyTuner(smoothing=2.0)
