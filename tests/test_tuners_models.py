"""Tests for cost-modeling and simulation-based tuners."""

import math

import numpy as np
import pytest

from repro.core import Budget
from repro.systems.cluster import Cluster
from repro.systems.dbms import DbmsSimulator, htap_mixed, olap_analytics, oltp_orders
from repro.systems.hadoop import HadoopSimulator, terasort
from repro.systems.spark import SparkSimulator, spark_sort
from repro.tuners import (
    AddmDiagnoser,
    CostModelTuner,
    StmmMemoryTuner,
    TraceSimulationTuner,
    cost_model_for,
)
from repro.tuners.cost_model import dbms_memory_infeasible
from repro.tuners.simulation import trace_replay_predict


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def cluster():
    return Cluster.uniform(4)


@pytest.fixture(scope="module")
def dbms(cluster):
    return DbmsSimulator(cluster)


class TestCostModels:
    @pytest.mark.parametrize("kind", ["dbms", "hadoop", "spark"])
    def test_models_exist(self, kind):
        assert cost_model_for(kind).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            cost_model_for("mainframe")

    def test_dbms_model_positive_and_finite_for_default(self, dbms, cluster):
        model = cost_model_for("dbms")
        pred = model.predict(htap_mixed(), dbms.default_configuration(), cluster)
        assert 0 < pred < math.inf

    def test_dbms_model_flags_oom_configs(self, dbms, cluster):
        model = cost_model_for("dbms")
        config = dbms.config_space.partial({
            "work_mem_mb": 4096, "hash_mem_multiplier": 8, "max_connections": 1000,
        })
        assert math.isinf(model.predict(htap_mixed(), config, cluster))

    def test_dbms_model_rank_sensible_on_memory(self, dbms, cluster):
        model = cost_model_for("dbms")
        wl = olap_analytics()
        small = model.predict(wl, dbms.config_space.partial({"buffer_pool_mb": 64}), cluster)
        big = model.predict(wl, dbms.config_space.partial({"buffer_pool_mb": 8192}), cluster)
        assert big < small

    def test_hadoop_model_prefers_more_reducers(self, cluster):
        hadoop = HadoopSimulator(cluster)
        model = cost_model_for("hadoop")
        wl = terasort(8.0)
        r1 = model.predict(wl, hadoop.config_space.partial({"mapreduce_job_reduces": 1}), cluster)
        r32 = model.predict(wl, hadoop.config_space.partial({"mapreduce_job_reduces": 32}), cluster)
        assert r32 < r1

    def test_spark_model_prefers_more_executors(self, cluster):
        spark = SparkSimulator(cluster)
        model = cost_model_for("spark")
        wl = spark_sort(8.0)
        r2 = model.predict(wl, spark.config_space.partial({"num_executors": 2}), cluster)
        r16 = model.predict(wl, spark.config_space.partial({"num_executors": 16}), cluster)
        assert r16 < r2

    def test_memory_feasibility_helper(self, dbms):
        default = dbms.default_configuration()
        assert not dbms_memory_infeasible(default, 16384, sessions=8, workers=2)
        greedy = dbms.config_space.partial({"work_mem_mb": 4096, "max_connections": 1000})
        assert dbms_memory_infeasible(greedy, 16384, sessions=8, workers=2)


class TestCostModelTuner:
    @pytest.mark.parametrize(
        "make_system,workload",
        [
            (lambda c: DbmsSimulator(c), htap_mixed(0.5)),
            (lambda c: HadoopSimulator(c), terasort(4.0)),
            (lambda c: SparkSimulator(c), spark_sort(4.0)),
        ],
        ids=["dbms", "hadoop", "spark"],
    )
    def test_few_runs_real_improvement(self, cluster, make_system, workload):
        system = make_system(cluster)
        default = system.run(workload, system.default_configuration()).runtime_s
        result = CostModelTuner(n_model_samples=400).tune(
            system, workload, Budget(max_runs=5), rng()
        )
        assert result.n_real_runs <= 5
        assert result.best_runtime_s < default

    def test_model_predictions_recorded(self, dbms):
        result = CostModelTuner(n_model_samples=100).tune(
            dbms, htap_mixed(0.5), Budget(max_runs=4), rng()
        )
        models = [o for o in result.history if o.source == "model"]
        assert len(models) == 100


class TestStmm:
    def test_improves_memory_bound_workload(self, dbms):
        wl = olap_analytics()
        default = dbms.run(wl, dbms.default_configuration()).runtime_s
        result = StmmMemoryTuner().tune(dbms, wl, Budget(max_runs=15), rng())
        assert result.best_runtime_s < default

    def test_only_touches_memory_knobs(self, dbms):
        wl = olap_analytics()
        result = StmmMemoryTuner().tune(dbms, wl, Budget(max_runs=10), rng())
        default = dbms.default_configuration()
        for knob in default:
            if knob not in ("buffer_pool_mb", "work_mem_mb"):
                assert result.best_config[knob] == default[knob], knob

    def test_non_dbms_degrades_to_default(self, cluster):
        hadoop = HadoopSimulator(cluster)
        result = StmmMemoryTuner().tune(hadoop, terasort(4.0), Budget(max_runs=5), rng())
        assert result.best_config == hadoop.default_configuration()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StmmMemoryTuner(step_fraction=0)


class TestTraceReplay:
    def test_self_prediction_exact(self, dbms):
        wl = htap_mixed()
        config = dbms.default_configuration()
        base = dbms.run(wl, config)
        pred = trace_replay_predict("dbms", config, base, config,
                                    wl.signature()["hot_set_mb"])
        assert pred == pytest.approx(base.runtime_s, rel=0.01)

    def test_rank_fidelity_positive(self, dbms):
        from repro.analysis.whatif import evaluate_predictor

        wl = htap_mixed()
        config = dbms.default_configuration()
        base = dbms.run(wl, config)
        acc = evaluate_predictor(
            dbms, wl,
            lambda c: trace_replay_predict(
                "dbms", config, base, c, wl.signature()["hot_set_mb"]
            ),
            n_points=20, rng=rng(3),
        )
        assert acc.rank_fidelity > 0.3

    def test_unknown_kind(self, dbms):
        wl = htap_mixed()
        config = dbms.default_configuration()
        base = dbms.run(wl, config)
        with pytest.raises(ValueError):
            trace_replay_predict("mainframe", config, base, config)

    def test_tuner_improves(self, dbms):
        wl = htap_mixed(0.5)
        default = dbms.run(wl, dbms.default_configuration()).runtime_s
        result = TraceSimulationTuner(n_model_samples=300).tune(
            dbms, wl, Budget(max_runs=5), rng()
        )
        assert result.best_runtime_s < default


class TestAddm:
    def test_improves_and_reports_findings(self, dbms):
        wl = oltp_orders(0.5, n_transactions=50_000)
        default = dbms.run(wl, dbms.default_configuration()).runtime_s
        result = AddmDiagnoser().tune(dbms, wl, Budget(max_runs=10), rng())
        assert result.best_runtime_s < default
        assert result.extras["findings_applied"]

    def test_findings_target_the_bottleneck(self, dbms):
        # A commit-bound OLTP mix should trigger the log-commit remedy
        # among the first findings.
        wl = oltp_orders(0.5, n_transactions=50_000)
        result = AddmDiagnoser().tune(dbms, wl, Budget(max_runs=10), rng())
        assert any(
            f in ("log-commit-waits", "lock-contention", "buffer-pool-misses",
                  "cpu-saturation", "checkpoint-pressure", "operator-spills")
            for f in result.extras["findings_applied"]
        )

    def test_works_on_spark(self, cluster):
        spark = SparkSimulator(cluster)
        wl = spark_sort(4.0)
        default = spark.run(wl, spark.default_configuration()).runtime_s
        result = AddmDiagnoser().tune(spark, wl, Budget(max_runs=10), rng())
        assert result.best_runtime_s <= default * 1.0001

    def test_never_recommends_worse_than_default(self, dbms):
        wl = htap_mixed(0.5)
        default = dbms.run(wl, dbms.default_configuration()).runtime_s
        result = AddmDiagnoser().tune(dbms, wl, Budget(max_runs=8), rng(9))
        assert result.best_runtime_s <= default * 1.0001
