"""Tests for experiment-driven and machine-learning tuners."""

import numpy as np
import pytest

from repro.core import Budget, SubspaceSystem
from repro.core.session import TuningSession
from repro.systems.cluster import Cluster
from repro.systems.dbms import (
    DBMS_TUNING_KNOBS,
    DbmsSimulator,
    adhoc_query,
    build_screening_space,
    htap_mixed,
    olap_analytics,
    oltp_orders,
)
from repro.systems.hadoop import HadoopSimulator, terasort
from repro.tuners import (
    AdaptiveSamplingTuner,
    BayesOptTuner,
    ITunedTuner,
    NeuralNetTuner,
    OtterTuneTuner,
    RecursiveRandomSearchTuner,
    SardRanker,
    SardTuner,
    build_repository,
)


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture(scope="module")
def cluster():
    return Cluster.uniform(4)


@pytest.fixture(scope="module")
def dbms(cluster):
    return DbmsSimulator(cluster)


@pytest.fixture(scope="module")
def workload():
    return htap_mixed(0.5)


@pytest.fixture(scope="module")
def default_runtime(dbms, workload):
    return dbms.run(workload, dbms.default_configuration()).runtime_s


class TestSard:
    def test_ranker_finds_dominant_knob(self, cluster):
        hadoop = HadoopSimulator(cluster)
        fsystem = SubspaceSystem(
            hadoop, ["mapreduce_job_reduces", "heartbeat_interval_s", "counters_limit"]
        )
        session = TuningSession(
            fsystem, terasort(4.0), Budget(max_runs=30), rng()
        )
        ranking = SardRanker().rank(session)
        assert ranking[0][0] == "mapreduce_job_reduces"
        assert ranking[0][1] > ranking[-1][1]

    def test_ranker_with_tiny_budget_degrades_gracefully(self, dbms, workload):
        session = TuningSession(dbms, workload, Budget(max_runs=2), rng())
        ranking = SardRanker().rank(session)
        assert all(effect == 0.0 for _, effect in ranking)

    def test_sard_tuner_improves(self, dbms, workload, default_runtime):
        screening = build_screening_space(dbms.cluster.min_node.memory_mb)
        fsystem = SubspaceSystem(dbms, DBMS_TUNING_KNOBS, space=screening)
        result = SardTuner(top_k=2).tune(fsystem, workload, Budget(max_runs=60), rng())
        assert result.best_runtime_s < default_runtime
        assert "sard_ranking" in result.extras

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SardTuner(top_k=0)


class TestITuned:
    def test_improves_over_default(self, dbms, workload, default_runtime):
        result = ITunedTuner(n_init=6).tune(dbms, workload, Budget(max_runs=20), rng())
        assert result.best_runtime_s < default_runtime
        assert result.n_real_runs == 20

    def test_ei_steps_follow_lhs(self, dbms, workload):
        result = ITunedTuner(n_init=5).tune(dbms, workload, Budget(max_runs=15), rng())
        tags = [o.tag for o in result.history.real_observations()]
        assert tags[0] == "default"
        assert sum(1 for t in tags if t.startswith("lhs")) == 5
        assert any(t.startswith("ei-") for t in tags)

    def test_beats_random_search_on_average(self, dbms, workload):
        from repro.tuners import RandomSearchTuner

        budget = Budget(max_runs=22)
        it_scores, rs_scores = [], []
        for seed in range(3):
            it = ITunedTuner().tune(dbms, workload, budget, rng(seed))
            rs = RandomSearchTuner().tune(dbms, workload, budget, rng(seed))
            it_scores.append(it.best_runtime_s)
            rs_scores.append(rs.best_runtime_s)
        assert np.mean(it_scores) <= np.mean(rs_scores) * 1.1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ITunedTuner(n_init=1)


class TestAdaptiveSamplingAndRrs:
    def test_adaptive_sampling_improves(self, dbms, workload, default_runtime):
        result = AdaptiveSamplingTuner().tune(dbms, workload, Budget(max_runs=18), rng())
        assert result.best_runtime_s < default_runtime

    def test_rrs_improves(self, dbms, workload, default_runtime):
        result = RecursiveRandomSearchTuner().tune(
            dbms, workload, Budget(max_runs=18), rng()
        )
        assert result.best_runtime_s < default_runtime

    def test_rrs_validation(self):
        with pytest.raises(ValueError):
            RecursiveRandomSearchTuner(shrink=1.5)

    def test_adaptive_sampling_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSamplingTuner(n_bootstrap=1)


class TestBayesOptAndNn:
    @pytest.mark.parametrize("acq", ["ei", "pi", "lcb"])
    def test_acquisitions_work(self, dbms, workload, default_runtime, acq):
        result = BayesOptTuner(acquisition=acq).tune(
            dbms, workload, Budget(max_runs=15), rng()
        )
        assert result.best_runtime_s < default_runtime

    def test_unknown_acquisition(self):
        with pytest.raises(ValueError):
            BayesOptTuner(acquisition="ucb-magic")

    def test_nn_tuner_improves(self, dbms, workload, default_runtime):
        result = NeuralNetTuner(epochs=150).tune(
            dbms, workload, Budget(max_runs=18), rng()
        )
        assert result.best_runtime_s < default_runtime

    def test_nn_epsilon_validation(self):
        with pytest.raises(ValueError):
            NeuralNetTuner(epsilon=2.0)


class TestOtterTune:
    @pytest.fixture(scope="class")
    def repo(self, dbms):
        return build_repository(
            dbms,
            [olap_analytics(0.3), oltp_orders(0.3, n_transactions=50_000), adhoc_query(3, 0.3)],
            n_samples=20,
            rng=rng(7),
        )

    def test_repository_contents(self, repo, dbms):
        assert len(repo.workloads) >= 2
        X, y, M = repo.all_observations()
        assert X.shape[1] == dbms.config_space.dimension
        assert M.shape[1] == len(repo.metric_names)
        assert np.isfinite(y).all()

    def test_metric_pruning_drops_constants(self, repo):
        pruned = repo.pruned_metrics()
        assert 0 < len(pruned) < len(repo.metric_names)
        _, _, M = repo.all_observations()
        for idx in pruned:
            assert M[:, idx].std() > 0

    def test_knob_ranking_returns_all_knobs(self, repo, dbms):
        ranked = repo.ranked_knobs(dbms.config_space)
        assert sorted(ranked) == sorted(dbms.config_space.names())

    def test_tuner_improves_and_reports_pipeline(self, repo, dbms, workload, default_runtime):
        result = OtterTuneTuner(repo, n_init=4).tune(
            dbms, workload, Budget(max_runs=18), rng(1)
        )
        assert result.best_runtime_s < default_runtime
        assert result.extras["ottertune_top_knobs"]
        assert result.extras["ottertune_pruned_metrics"]
        assert result.extras["ottertune_mapped_workload"] is not None

    def test_mapping_picks_closest_workload(self, repo, dbms):
        # Tuning an OLTP-like target should not map to the pure OLAP
        # history entry.
        target = oltp_orders(0.3, n_transactions=50_000)
        result = OtterTuneTuner(repo, n_init=4).tune(
            dbms, target, Budget(max_runs=10), rng(2)
        )
        mapped = result.extras["ottertune_mapped_workload"]
        assert "oltp" in mapped or "adhoc" in mapped
