"""Bit-for-bit parity of the vectorized batch kernels vs the scalar loop.

``run_batch_vectorized`` promises to be *invisible*: every Measurement —
runtime, every metric, failure flags, cost — must equal the scalar
``run()`` loop's output exactly (``repr`` equality, not approximate),
over random configurations including the engineered failure regions.
The same must hold end-to-end: noisy instrumented runs, quarantine
bookkeeping, and whole batch-tuner sessions produce byte-identical
:meth:`~repro.core.measurement.TuningHistory.digest` values with the
fast path on or off, and wrappers that cannot vectorize (chaos
injection) degrade gracefully to the scalar path.
"""

import numpy as np
import pytest

from repro import Budget, make_system
from repro.core.session import TuningSession
from repro.core.system import InstrumentedSystem
from repro.exec.resilience import ExecutionPolicy
from repro.workloads import htap_mixed, spark_sql_join, terasort

KINDS = ["dbms", "spark", "hadoop"]

_WORKLOADS = {
    "dbms": htap_mixed,
    "spark": spark_sql_join,
    "hadoop": terasort,
}


def _tweak_into_failure_region(kind, config):
    """Push a sampled config toward each simulator's OOM/failure cliff."""
    if kind == "dbms":
        return config.replace(
            work_mem_mb=2048.0, max_connections=500.0, hash_mem_multiplier=4.0
        )
    if kind == "spark":
        return config.replace(executor_memory_mb=7000.0, executor_cores=4)
    return config.replace(
        mapreduce_map_memory_mb=config["io_sort_mb"] + 100.0,
        mapreduce_reduce_memory_mb=1024.0,
    )


def _config_batch(kind, system, n=200, seed=17):
    rng = np.random.default_rng(seed)
    configs = list(system.config_space.sample_configurations(n, rng))
    for config in list(configs[:40]):
        try:
            configs.append(_tweak_into_failure_region(kind, config))
        except Exception:
            continue
    return configs


def _assert_identical(scalar, vectorized, context):
    assert repr(scalar.runtime_s) == repr(vectorized.runtime_s), context
    assert scalar.failed == vectorized.failed, context
    assert repr(scalar.cost_units) == repr(vectorized.cost_units), context
    assert list(scalar.metrics) == list(vectorized.metrics), context
    for key in scalar.metrics:
        assert (
            repr(float(scalar.metrics[key]))
            == repr(float(vectorized.metrics[key]))
        ), f"{context}: metric {key}"


class TestKernelParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_kernel_matches_scalar_bit_for_bit(self, kind):
        system = make_system(kind)
        workload = _WORKLOADS[kind]()
        configs = _config_batch(kind, system)
        vectorized = system.run_batch_vectorized(workload, configs)
        assert len(vectorized) == len(configs)
        n_failed = 0
        for i, config in enumerate(configs):
            scalar = system.run(workload, config)
            n_failed += scalar.failed
            _assert_identical(scalar, vectorized[i], f"{kind}[{i}]")
        # The batch must exercise the failure masks, not just the
        # happy path.
        assert n_failed > 0

    @pytest.mark.parametrize("kind", KINDS)
    def test_empty_and_singleton_batches(self, kind):
        system = make_system(kind)
        workload = _WORKLOADS[kind]()
        assert system.run_batch_vectorized(workload, []) == []
        config = system.default_configuration()
        [vectorized] = system.run_batch_vectorized(workload, [config])
        _assert_identical(system.run(workload, config), vectorized, kind)


class TestInstrumentedParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_noisy_batches_identical(self, kind):
        """Noise draws follow per-config RNG order on both paths."""
        workload = _WORKLOADS[kind]()
        configs = _config_batch(kind, make_system(kind), n=40, seed=3)
        results = {}
        for vectorize in (False, True):
            system = InstrumentedSystem(
                make_system(kind), noise=0.05,
                rng=np.random.default_rng(11), vectorize=vectorize,
            )
            results[vectorize] = system.run_batch(workload, configs)
            assert system.run_count == len(configs)
        for scalar, vectorized in zip(results[False], results[True]):
            _assert_identical(scalar, vectorized, kind)

    def test_quarantine_skips_identical(self):
        """The batch path and scalar path quarantine identically."""
        workload = htap_mixed()
        inner = make_system("dbms")
        fail_cfg = _tweak_into_failure_region(
            "dbms", inner.default_configuration()
        )
        assert inner.run(workload, fail_cfg).failed
        ok_cfg = inner.default_configuration()
        outcomes = {}
        for vectorize in (False, True):
            session = TuningSession(
                InstrumentedSystem(make_system("dbms"), vectorize=vectorize),
                workload, Budget(max_runs=8), np.random.default_rng(0),
                execution=ExecutionPolicy(breaker_threshold=2),
            )
            session.evaluate_batch([fail_cfg, fail_cfg])  # trips the breaker
            session.evaluate_batch([fail_cfg, ok_cfg])    # first is skipped
            outcomes[vectorize] = (
                session.history.digest(),
                session.quarantine_skips,
                session.real_runs,
            )
        assert outcomes[False] == outcomes[True]
        assert outcomes[True][1] == 1  # the quarantined proposal was skipped


class TestSessionDigestParity:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("tuner_name", ["cem", "genetic"])
    def test_batch_tuner_digest_identical(self, kind, tuner_name):
        from repro.tuners import CrossEntropyTuner, GeneticTuner

        factories = {
            "cem": lambda: CrossEntropyTuner(batch=12),
            "genetic": lambda: GeneticTuner(population=12, elite=3),
        }
        workload = _WORKLOADS[kind]()
        digests = {}
        for vectorize in (False, True):
            system = InstrumentedSystem(
                make_system(kind), noise=0.05,
                rng=np.random.default_rng(7), vectorize=vectorize,
            )
            result = factories[tuner_name]().tune(
                system, workload, Budget(max_runs=36),
                rng=np.random.default_rng(42),
            )
            digests[vectorize] = result.history.digest()
        assert digests[False] == digests[True]

    def test_chaos_wrapper_falls_back_to_scalar(self):
        """ChaosSystem cannot vectorize; sessions still agree exactly."""
        from repro.chaos.policies import standard_policies
        from repro.chaos.system import ChaosSystem
        from repro.tuners import CrossEntropyTuner

        digests = {}
        for vectorize in (False, True):
            system = ChaosSystem(
                InstrumentedSystem(
                    make_system("dbms"), noise=0.05,
                    rng=np.random.default_rng(1), vectorize=vectorize,
                ),
                standard_policies(0.10), seed=5,
            )
            assert not system.supports_vectorized()
            result = CrossEntropyTuner(batch=10).tune(
                system, htap_mixed(), Budget(max_runs=30),
                rng=np.random.default_rng(4),
                execution=ExecutionPolicy(max_retries=1, backoff_base_s=0.1),
            )
            digests[vectorize] = result.history.digest()
        assert digests[False] == digests[True]


class TestCapabilityGates:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        system = InstrumentedSystem(make_system("dbms"))
        assert not system.supports_vectorized()
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        system = InstrumentedSystem(make_system("dbms"))
        assert system.supports_vectorized()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        system = InstrumentedSystem(make_system("dbms"), vectorize=False)
        assert not system.supports_vectorized()

    @pytest.mark.parametrize("kind", KINDS)
    def test_simulators_advertise_kernel(self, kind):
        assert make_system(kind).supports_vectorized()
