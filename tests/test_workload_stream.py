"""Tests for workload streams and the registry."""

import pytest

from repro.core.registry import UnknownName, make_system, make_tuner, system_names, tuner_names, tuners_in_category
from repro.core.workload import StreamPhase, WorkloadStream
from repro.systems.dbms import htap_mixed, olap_analytics


class TestWorkloadStream:
    def test_constant(self):
        stream = WorkloadStream.constant(olap_analytics(), 4)
        assert len(stream) == 4
        assert len(list(stream)) == 4

    def test_shift(self):
        stream = WorkloadStream.shift(olap_analytics(), htap_mixed(), 3)
        names = [w.name for w in stream]
        assert names[:3] == [olap_analytics().name] * 3
        assert names[3:] == [htap_mixed().name] * 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkloadStream([])

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadStream([StreamPhase(olap_analytics(), 0)])

    def test_distinct_workloads(self):
        stream = WorkloadStream.shift(olap_analytics(), htap_mixed(), 2)
        assert len(stream.distinct_workloads()) == 2


class TestScaling:
    def test_dbms_scaled(self):
        wl = olap_analytics()
        bigger = wl.scaled(2.0)
        assert bigger.total_scan_mb() > wl.total_scan_mb() * 1.8
        assert bigger.signature()["sort_mb"] == pytest.approx(
            wl.signature()["sort_mb"] * 2.0
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            olap_analytics().scaled(0)


class TestRegistry:
    def test_all_categories_covered(self):
        from repro.core.tuner import CATEGORIES

        names = tuner_names()
        assert len(names) >= 15
        for category in CATEGORIES:
            assert tuners_in_category(category), f"no tuner in {category}"

    def test_systems_registered(self):
        assert set(system_names()) == {"dbms", "hadoop", "spark"}

    def test_make_tuner_unknown(self):
        with pytest.raises(UnknownName):
            make_tuner("not-a-tuner")

    def test_make_system_kwargs(self):
        from repro.systems.cluster import Cluster

        system = make_system("hadoop", cluster=Cluster.uniform(4))
        assert len(system.cluster) == 4

    def test_factories_produce_fresh_instances(self):
        a = make_tuner("random-search")
        b = make_tuner("random-search")
        assert a is not b
